package executor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sprintgame/internal/stats"
)

// CompletionEvent records one finished task.
type CompletionEvent struct {
	// TimeS is the completion time in seconds from application start.
	TimeS float64
	// Job, Stage, Task identify the completed task.
	Job, Stage, Task int
}

// Result is the outcome of executing an application in a fixed mode.
type Result struct {
	App      string
	Mode     Mode
	Events   []CompletionEvent // sorted by time
	Makespan float64
	Total    int
}

// Run executes the application in the given mode and returns its
// completion trace. Task durations are drawn log-normally from each
// stage's mean and CV, identically across modes for the same seed: the
// same seed yields the same work, so normal-vs-sprint comparisons isolate
// the hardware difference exactly, mirroring the paper's fixed-work TPS
// methodology (§5).
func Run(app AppSpec, mode Mode, seed uint64) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if mode.Cores <= 0 || mode.FreqGHz <= 0 {
		return nil, fmt.Errorf("executor: invalid mode %+v", mode)
	}
	rng := stats.NewRNG(seed)
	res := &Result{App: app.Name, Mode: mode}
	now := 0.0
	freqGain := mode.FreqGHz / RefFreqGHz
	for ji, job := range app.Jobs {
		for si, st := range job.Stages {
			// Draw base task durations (mode-independent work).
			durs := make([]float64, st.Tasks)
			mu, sigma := logNormalParams(st.MeanTaskS, st.TaskCV)
			for i := range durs {
				base := rng.LogNormal(mu, sigma)
				// Frequency only accelerates the compute-bound portion.
				durs[i] = base * (st.MemBoundFrac + (1-st.MemBoundFrac)/freqGain)
			}
			width := mode.Cores
			if st.MaxParallelism > 0 && st.MaxParallelism < width {
				width = st.MaxParallelism
			}
			// List-schedule onto `width` workers: each task goes to the
			// earliest-free worker, the paper's dynamic task scheduling.
			workers := make([]float64, width)
			for i := range workers {
				workers[i] = now
			}
			for ti, d := range durs {
				w := argmin(workers)
				workers[w] += d
				res.Events = append(res.Events, CompletionEvent{
					TimeS: workers[w], Job: ji, Stage: si, Task: ti,
				})
			}
			// The stage barrier: the next stage starts when all workers
			// drain.
			now = maxOf(workers)
		}
	}
	sort.Slice(res.Events, func(i, j int) bool { return res.Events[i].TimeS < res.Events[j].TimeS })
	res.Total = len(res.Events)
	res.Makespan = now
	return res, nil
}

// logNormalParams converts a mean and coefficient of variation into
// log-normal mu and sigma.
func logNormalParams(mean, cv float64) (mu, sigma float64) {
	if cv <= 0 {
		return math.Log(mean), 0
	}
	v := cv * cv
	sigma = math.Sqrt(math.Log(1 + v))
	mu = math.Log(mean) - sigma*sigma/2
	return
}

func argmin(xs []float64) int {
	best := 0
	for i := range xs {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CumulativeAt returns the number of tasks completed by time tS.
func (r *Result) CumulativeAt(tS float64) float64 {
	// Events are sorted; binary search for the first event after tS.
	i := sort.Search(len(r.Events), func(i int) bool { return r.Events[i].TimeS > tS })
	return float64(i)
}

// timeForCumulative returns the earliest time by which k tasks are
// complete. k beyond the total returns the makespan.
func (r *Result) timeForCumulative(k float64) float64 {
	idx := int(math.Ceil(k))
	if idx <= 0 {
		return 0
	}
	if idx > len(r.Events) {
		return r.Makespan
	}
	return r.Events[idx-1].TimeS
}

// TPSTrace bins completions into windows of binS seconds and returns
// tasks-per-second for each bin, covering [0, Makespan].
func (r *Result) TPSTrace(binS float64) ([]float64, error) {
	if binS <= 0 {
		return nil, errors.New("executor: bin width must be positive")
	}
	n := int(math.Ceil(r.Makespan/binS)) + 1
	out := make([]float64, n)
	for _, e := range r.Events {
		b := int(e.TimeS / binS)
		if b >= n {
			b = n - 1
		}
		out[b]++
	}
	for i := range out {
		out[i] /= binS
	}
	return out, nil
}

// MeanTPS returns total tasks divided by makespan.
func (r *Result) MeanTPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Total) / r.Makespan
}

// EpochSpeedups implements the paper's trace-interpolation methodology
// (§5): for each epoch of the normal-mode execution it measures the tasks
// completed, finds the work-aligned position in the sprint-mode execution
// (the time at which the sprint run had completed the same cumulative
// work), and measures the tasks the sprint run completes in one epoch
// from there. The ratio is the epoch's utility from sprinting. Epochs
// after either run finishes its work are dropped.
func EpochSpeedups(normal, sprint *Result, epochS float64) ([]float64, error) {
	if epochS <= 0 {
		return nil, errors.New("executor: epoch must be positive")
	}
	if normal.Total != sprint.Total {
		return nil, fmt.Errorf("executor: runs did different work (%d vs %d tasks)", normal.Total, sprint.Total)
	}
	var out []float64
	for t := 0.0; t+epochS <= normal.Makespan; t += epochS {
		wn := normal.CumulativeAt(t+epochS) - normal.CumulativeAt(t)
		if wn <= 0 {
			continue
		}
		s := sprint.timeForCumulative(normal.CumulativeAt(t))
		if s+epochS > sprint.Makespan {
			break // sprint run exhausts its work inside this epoch
		}
		ws := sprint.CumulativeAt(s+epochS) - sprint.CumulativeAt(s)
		out = append(out, ws/wn)
	}
	if len(out) == 0 {
		return nil, errors.New("executor: execution shorter than one epoch")
	}
	return out, nil
}
