// Package executor is a discrete-event simulation of a Spark-style
// task-parallel engine running on a chip multiprocessor that can sprint.
//
// An application is a sequence of jobs; each job is a sequence of stages;
// each stage is a set of tasks scheduled dynamically onto the available
// cores (§5 of the paper: "The Spark run-time engine dynamically schedules
// tasks to use available cores and maximize parallelism"). Executing an
// application in normal mode (3 cores @ 1.2 GHz) and sprint mode (12
// cores @ 2.7 GHz) yields tasks-per-second traces whose ratio is the
// per-epoch sprint utility — the quantity the sprinting game's agents
// estimate online.
package executor

import (
	"errors"
	"fmt"

	"sprintgame/internal/stats"
	"sprintgame/internal/workload"
)

// Mode is a chip operating point.
type Mode struct {
	Cores   int
	FreqGHz float64
}

// The paper's two operating points (§3.1).
var (
	Normal = Mode{Cores: 3, FreqGHz: 1.2}
	Sprint = Mode{Cores: 12, FreqGHz: 2.7}
)

// RefFreqGHz is the frequency at which task base durations are specified.
const RefFreqGHz = 1.2

// StageSpec describes one stage of a job.
type StageSpec struct {
	// Name labels the stage.
	Name string
	// Tasks is the number of tasks in the stage. The paper: "The total
	// number of tasks in a job is constant and independent of the
	// available hardware resources."
	Tasks int
	// MeanTaskS is the mean task duration in seconds on one core at
	// RefFreqGHz with no memory stalls removed.
	MeanTaskS float64
	// TaskCV is the coefficient of variation of task durations
	// (log-normal task sizes).
	TaskCV float64
	// MemBoundFrac is the fraction of task time that does not scale with
	// core frequency (memory/shuffle-bound work).
	MemBoundFrac float64
	// MaxParallelism caps how many of the stage's tasks can run
	// concurrently (data partitioning limit). 0 means unlimited.
	MaxParallelism int
}

// Validate checks the stage parameters.
func (s StageSpec) Validate() error {
	if s.Tasks <= 0 {
		return fmt.Errorf("executor: stage %q needs tasks", s.Name)
	}
	if s.MeanTaskS <= 0 {
		return fmt.Errorf("executor: stage %q needs positive task duration", s.Name)
	}
	if s.TaskCV < 0 {
		return fmt.Errorf("executor: stage %q has negative task CV", s.Name)
	}
	if s.MemBoundFrac < 0 || s.MemBoundFrac > 1 {
		return fmt.Errorf("executor: stage %q memory-bound fraction %v outside [0,1]", s.Name, s.MemBoundFrac)
	}
	if s.MaxParallelism < 0 {
		return fmt.Errorf("executor: stage %q has negative parallelism cap", s.Name)
	}
	return nil
}

// JobSpec is a sequence of dependent stages.
type JobSpec struct {
	Name   string
	Stages []StageSpec
}

// AppSpec is a complete application: jobs complete in sequence while
// tasks within a stage complete out of order (§5).
type AppSpec struct {
	Name string
	Jobs []JobSpec
}

// Validate checks the whole application.
func (a AppSpec) Validate() error {
	if len(a.Jobs) == 0 {
		return errors.New("executor: application has no jobs")
	}
	for _, j := range a.Jobs {
		if len(j.Stages) == 0 {
			return fmt.Errorf("executor: job %q has no stages", j.Name)
		}
		for _, s := range j.Stages {
			if err := s.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TotalTasks returns the number of tasks across all jobs and stages.
func (a AppSpec) TotalTasks() int {
	n := 0
	for _, j := range a.Jobs {
		for _, s := range j.Stages {
			n += s.Tasks
		}
	}
	return n
}

// stageParams decomposes a target sprint speedup into a parallelism cap
// and a memory-bound fraction. The sprint's ideal gain is 4x from cores
// times 2.25x from frequency; targets are achieved by limiting stage
// parallelism (integer core gains) and adding memory-bound time
// (fractional frequency gains).
func stageParams(target float64) (maxPar int, memFrac float64) {
	const freqRatio = 2.7 / RefFreqGHz // 2.25
	options := []struct {
		par  int
		gain float64
	}{
		{3, 1}, {4, 4.0 / 3}, {6, 2}, {8, 8.0 / 3}, {12, 4},
	}
	if target < 1 {
		target = 1
	}
	for _, o := range options {
		need := target / o.gain
		if need <= freqRatio {
			if need < 1 {
				need = 1
			}
			// Invert need = 1 / (m + (1-m)/freqRatio).
			m := (1/need - 1/freqRatio) / (1 - 1/freqRatio)
			return o.par, stats.Clamp(m, 0, 1)
		}
	}
	return 12, 0 // best achievable: ~9x
}

// AppForBenchmark synthesizes an executor application whose stages mirror
// the benchmark's phases: each job interleaves one stage per phase, with
// stage durations proportional to phase weights and stage parameters
// chosen so the stage's sprint speedup approximates the phase's mean
// utility (capped at the hardware's ~9x ideal).
func AppForBenchmark(b *workload.Benchmark, jobs int, rng *stats.RNG) (AppSpec, error) {
	if err := b.Validate(); err != nil {
		return AppSpec{}, err
	}
	if jobs <= 0 {
		return AppSpec{}, errors.New("executor: need at least one job")
	}
	app := AppSpec{Name: b.Name}
	for j := 0; j < jobs; j++ {
		job := JobSpec{Name: fmt.Sprintf("%s-job%d", b.Name, j)}
		for _, ph := range b.Phases {
			// Each job's stage draws its sprint benefit from the phase
			// distribution, so measured epoch gains reproduce the
			// phase's utility spread, not just its mean.
			target := ph.Utility.Sample(rng)
			par, mem := stageParams(target)
			// Stage work scales with the phase weight; task sizes jitter
			// across jobs so no two jobs are identical. Tasks are sized
			// so that a stage spans several sprint epochs — application
			// phases must outlive the epoch for agents to exploit them,
			// exactly as the paper's multi-minute Spark stages do.
			tasks := 24 + int(ph.Weight*160)
			mean := 2.0 * (0.8 + 0.4*rng.Float64())
			job.Stages = append(job.Stages, StageSpec{
				Name:           fmt.Sprintf("%s-%s", ph.Label, job.Name),
				Tasks:          tasks,
				MeanTaskS:      mean,
				TaskCV:         0.35,
				MemBoundFrac:   mem,
				MaxParallelism: par,
			})
		}
		app.Jobs = append(app.Jobs, job)
	}
	return app, app.Validate()
}
