package executor

import (
	"fmt"
	"math"

	"sprintgame/internal/stats"
	"sprintgame/internal/workload"
)

// PowerModel estimates chip power draw in each mode. It is calibrated so
// that normal mode draws ~45 W and a sprint draws ~1.8x that on average,
// matching Figure 1's normalized-power panel, with memory-bound
// applications sprinting slightly cheaper (stalled cores burn less
// dynamic power) and compute-bound ones slightly hotter — reproducing the
// modest spread across benchmarks in the figure.
type PowerModel struct {
	// UncoreW is mode-independent power (caches, memory controllers, I/O).
	UncoreW float64
	// CoreDynW is the dynamic power of one fully-utilized core at
	// RefFreqGHz.
	CoreDynW float64
	// FreqExp is the exponent relating frequency to per-core dynamic
	// power (captures voltage scaling: P ~ f^FreqExp).
	FreqExp float64
}

// DefaultPowerModel returns the calibrated model.
func DefaultPowerModel() PowerModel {
	return PowerModel{UncoreW: 30, CoreDynW: 5, FreqExp: 1.25}
}

// Power returns the chip power in mode for a workload whose memory-bound
// fraction is memFrac: stalled (memory-bound) core time draws 35% of the
// dynamic power of busy time.
func (m PowerModel) Power(mode Mode, memFrac float64) float64 {
	if mode.Cores <= 0 || mode.FreqGHz <= 0 {
		return m.UncoreW
	}
	util := (1 - memFrac) + 0.35*memFrac
	perCore := m.CoreDynW * math.Pow(mode.FreqGHz/RefFreqGHz, m.FreqExp) * util
	// Many-core sprints contend for shared bandwidth, so per-core
	// activity drops steeply with core count. The exponent is calibrated
	// to the paper's measurement that a 12-core 2.7 GHz sprint draws only
	// ~1.8x the power of 3 cores at 1.2 GHz (Figure 1).
	scale := 1.0
	if mode.Cores > Normal.Cores {
		scale = math.Pow(float64(mode.Cores)/float64(Normal.Cores), -0.85)
	}
	return m.UncoreW + float64(mode.Cores)*perCore*scale
}

// AppMemFrac returns the task-time-weighted memory-bound fraction of an
// application.
func AppMemFrac(app AppSpec) float64 {
	num, den := 0.0, 0.0
	for _, j := range app.Jobs {
		for _, s := range j.Stages {
			w := float64(s.Tasks) * s.MeanTaskS
			num += w * s.MemBoundFrac
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Characterization is one row of Figure 1: a benchmark's sprint speedup,
// normalized sprint power, and steady temperatures in both modes.
type Characterization struct {
	Benchmark    string
	Speedup      float64 // mean sprint TPS / normal TPS
	PowerRatio   float64 // sprint W / normal W
	NormalW      float64
	SprintW      float64
	NormalTempC  float64
	SprintTempC  float64
	EpochGains   []float64 // per-epoch utilities (for density estimation)
	MemBoundFrac float64
}

// TempModel converts power into steady temperature; wired to the thermal
// package in the experiments layer. Kept as a function type here so the
// executor has no dependency on package thermal.
type TempModel func(powerW float64) float64

// Characterize runs a benchmark's synthesized application in both modes
// and assembles its Figure 1 row. jobs controls execution length; epochS
// is the sprint epoch used for per-epoch utility extraction.
func Characterize(b *workload.Benchmark, jobs int, seed uint64, epochS float64, temp TempModel) (*Characterization, error) {
	app, err := AppForBenchmark(b, jobs, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	normal, err := Run(app, Normal, seed+1)
	if err != nil {
		return nil, err
	}
	sprint, err := Run(app, Sprint, seed+1)
	if err != nil {
		return nil, err
	}
	if sprint.Makespan >= normal.Makespan {
		return nil, fmt.Errorf("executor: sprint run no faster for %s", b.Name)
	}
	gains, err := EpochSpeedups(normal, sprint, epochS)
	if err != nil {
		return nil, err
	}
	pm := DefaultPowerModel()
	mem := AppMemFrac(app)
	nw := pm.Power(Normal, mem)
	sw := pm.Power(Sprint, mem)
	c := &Characterization{
		Benchmark:    b.Name,
		Speedup:      normal.Makespan / sprint.Makespan,
		PowerRatio:   sw / nw,
		NormalW:      nw,
		SprintW:      sw,
		EpochGains:   gains,
		MemBoundFrac: mem,
	}
	if temp != nil {
		c.NormalTempC = temp(nw)
		c.SprintTempC = temp(sw)
	}
	return c, nil
}
