package executor

import (
	"container/heap"
	"fmt"

	"sprintgame/internal/stats"
)

// The paper's executor "supports task-parallel computation by dividing an
// application into tasks, constructing a task dependence graph, and
// scheduling tasks dynamically based on available resources" (§2.3).
// Run executes jobs whose stages form chains; RunDAG generalizes to
// arbitrary stage DAGs within a job, with independent stages sharing the
// chip's cores.

// DAGJobSpec is a job whose stages form a dependency DAG.
type DAGJobSpec struct {
	Name   string
	Stages []StageSpec
	// Deps[i] lists the stage indices that must complete before stage i
	// may start. Indices must be < i (topological input order).
	Deps [][]int
}

// Validate checks the job's stages and dependency structure.
func (j DAGJobSpec) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("executor: DAG job %q has no stages", j.Name)
	}
	if len(j.Deps) != len(j.Stages) {
		return fmt.Errorf("executor: DAG job %q has %d stages but %d dependency lists",
			j.Name, len(j.Stages), len(j.Deps))
	}
	for i, s := range j.Stages {
		if err := s.Validate(); err != nil {
			return err
		}
		for _, d := range j.Deps[i] {
			if d < 0 || d >= i {
				return fmt.Errorf("executor: DAG job %q stage %d depends on invalid stage %d (need topological order)",
					j.Name, i, d)
			}
		}
	}
	return nil
}

// Chain converts a plain sequential job into an equivalent DAG job.
func Chain(j JobSpec) DAGJobSpec {
	deps := make([][]int, len(j.Stages))
	for i := range deps {
		if i > 0 {
			deps[i] = []int{i - 1}
		}
	}
	return DAGJobSpec{Name: j.Name, Stages: j.Stages, Deps: deps}
}

// completion is a scheduled task-finish event.
type completion struct {
	timeS float64
	stage int
	task  int
}

// completionHeap is a min-heap of completions by time.
type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].timeS < h[j].timeS }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunDAG executes a sequence of DAG jobs in the given mode. Stages whose
// dependencies have completed run concurrently, their tasks dynamically
// sharing the chip's cores (subject to each stage's parallelism cap).
// Jobs still complete in sequence, as in the paper's methodology.
func RunDAG(name string, jobs []DAGJobSpec, mode Mode, seed uint64) (*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("executor: application %q has no jobs", name)
	}
	if mode.Cores <= 0 || mode.FreqGHz <= 0 {
		return nil, fmt.Errorf("executor: invalid mode %+v", mode)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	rng := stats.NewRNG(seed)
	res := &Result{App: name, Mode: mode}
	freqGain := mode.FreqGHz / RefFreqGHz
	now := 0.0

	for ji, job := range jobs {
		n := len(job.Stages)
		// Pre-draw task durations (mode-independent work identity).
		durs := make([][]float64, n)
		for si, st := range job.Stages {
			mu, sigma := logNormalParams(st.MeanTaskS, st.TaskCV)
			durs[si] = make([]float64, st.Tasks)
			for i := range durs[si] {
				base := rng.LogNormal(mu, sigma)
				durs[si][i] = base * (st.MemBoundFrac + (1-st.MemBoundFrac)/freqGain)
			}
		}

		remainingDeps := make([]int, n)
		dependents := make([][]int, n)
		for i, deps := range job.Deps {
			remainingDeps[i] = len(deps)
			for _, d := range deps {
				dependents[d] = append(dependents[d], i)
			}
		}
		nextTask := make([]int, n)  // next task index to schedule per stage
		inFlight := make([]int, n)  // tasks currently running per stage
		doneTasks := make([]int, n) // finished tasks per stage
		ready := make([]bool, n)    // dependencies satisfied
		complete := make([]bool, n) // all tasks finished
		for i := range ready {
			ready[i] = remainingDeps[i] == 0
		}

		coresFree := mode.Cores
		events := &completionHeap{}
		heap.Init(events)
		clock := now

		// schedule fills free cores from ready stages (lowest index
		// first: FIFO stage order, the Spark default).
		schedule := func() {
			for coresFree > 0 {
				assigned := false
				for si := 0; si < n && coresFree > 0; si++ {
					st := job.Stages[si]
					if !ready[si] || nextTask[si] >= st.Tasks {
						continue
					}
					cap := st.Tasks
					if st.MaxParallelism > 0 && st.MaxParallelism < cap {
						cap = st.MaxParallelism
					}
					if inFlight[si] >= cap {
						continue
					}
					ti := nextTask[si]
					nextTask[si]++
					inFlight[si]++
					coresFree--
					heap.Push(events, completion{
						timeS: clock + durs[si][ti], stage: si, task: ti,
					})
					assigned = true
				}
				if !assigned {
					return
				}
			}
		}

		schedule()
		finished := 0
		for finished < n {
			if events.Len() == 0 {
				return nil, fmt.Errorf("executor: DAG job %q deadlocked (unreachable stages?)", job.Name)
			}
			ev := heap.Pop(events).(completion)
			clock = ev.timeS
			coresFree++
			inFlight[ev.stage]--
			doneTasks[ev.stage]++
			res.Events = append(res.Events, CompletionEvent{
				TimeS: ev.timeS, Job: ji, Stage: ev.stage, Task: ev.task,
			})
			if doneTasks[ev.stage] == job.Stages[ev.stage].Tasks && !complete[ev.stage] {
				complete[ev.stage] = true
				finished++
				for _, dep := range dependents[ev.stage] {
					remainingDeps[dep]--
					if remainingDeps[dep] == 0 {
						ready[dep] = true
					}
				}
			}
			schedule()
		}
		now = clock
	}
	// Events are produced in completion order already.
	res.Total = len(res.Events)
	res.Makespan = now
	return res, nil
}
