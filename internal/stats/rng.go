// Package stats provides deterministic random number generation and
// descriptive statistics used throughout the sprinting-game simulator.
//
// All stochastic components in this repository draw from stats.RNG rather
// than math/rand so that every experiment is reproducible from a seed and
// so that independent simulation streams can be split without correlation.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64 seeding and the xoshiro256** algorithm. The zero value is not
// valid; use NewRNG.
type RNG struct {
	s [4]uint64
	// cached second normal variate for the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the given state and returns the next value. It is
// used to seed the main generator from a single 64-bit seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator deterministically seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Avoid the pathological all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's
// continued use. It is used to give each simulated agent its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormAt returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormAt(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns a log-normal variate where the underlying normal has
// the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential variate with the given rate (lambda > 0).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Geometric returns the number of epochs an agent stays in a state it
// leaves with probability 1-p each epoch; i.e. a geometric variate with
// success probability 1-p, support {1, 2, ...}. Geometric(0) == 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return math.MaxInt32
	}
	n := 1
	for r.Float64() < p {
		n++
	}
	return n
}

// Poisson returns a Poisson variate with the given mean (lambda >= 0).
// Small means use Knuth's product method; large means (> 30) use a
// normal approximation clamped at zero, which keeps the cost O(1) for
// high-rate arrival processes. Poisson(0) == 0.
func (r *RNG) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("stats: Poisson with negative mean")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 30 {
		n := math.Round(r.NormAt(lambda, math.Sqrt(lambda)))
		if n < 0 {
			return 0
		}
		return int(n)
	}
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniformly chosen index weighted by the given
// non-negative weights. It panics if weights is empty or sums to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Choice with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: Choice with empty or zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
