package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	acc := Accumulator{}
	for i := 0; i < 100000; i++ {
		acc.Add(r.Float64())
	}
	if math.Abs(acc.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", acc.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBoolExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	acc := Accumulator{}
	for i := 0; i < 200000; i++ {
		acc.Add(r.Norm())
	}
	if math.Abs(acc.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", acc.Mean())
	}
	if math.Abs(acc.StdDev()-1) > 0.02 {
		t.Fatalf("normal stddev = %v, want ~1", acc.StdDev())
	}
}

func TestNormAt(t *testing.T) {
	r := NewRNG(17)
	acc := Accumulator{}
	for i := 0; i < 100000; i++ {
		acc.Add(r.NormAt(5, 2))
	}
	if math.Abs(acc.Mean()-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", acc.Mean())
	}
	if math.Abs(acc.StdDev()-2) > 0.05 {
		t.Fatalf("stddev = %v, want ~2", acc.StdDev())
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	acc := Accumulator{}
	for i := 0; i < 100000; i++ {
		acc.Add(r.Exp(2))
	}
	if math.Abs(acc.Mean()-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", acc.Mean())
	}
}

func TestGeometricMean(t *testing.T) {
	// Staying probability p = 0.5 implies mean duration 1/(1-p) = 2 epochs,
	// matching the paper's cooling model.
	r := NewRNG(29)
	acc := Accumulator{}
	for i := 0; i < 100000; i++ {
		acc.Add(float64(r.Geometric(0.5)))
	}
	if math.Abs(acc.Mean()-2) > 0.05 {
		t.Fatalf("Geometric(0.5) mean = %v, want ~2", acc.Mean())
	}
}

func TestGeometricEdge(t *testing.T) {
	r := NewRNG(31)
	if r.Geometric(0) != 1 {
		t.Fatal("Geometric(0) != 1")
	}
	if r.Geometric(-1) != 1 {
		t.Fatal("Geometric(-1) != 1")
	}
	if r.Geometric(1) != math.MaxInt32 {
		t.Fatal("Geometric(1) should saturate")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(37)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(41)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 3})]++
	}
	want := [3]float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-want[i]) > 0.01 {
			t.Fatalf("Choice index %d freq %v, want %v", i, frac, want[i])
		}
	}
}

func TestChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice on empty weights did not panic")
		}
	}()
	NewRNG(1).Choice(nil)
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(43)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d identical draws", same)
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(47)
	for i := 0; i < 10000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) out of bounds: %v", v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(7)
	for _, lambda := range []float64{0.3, 2, 10, 80} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			k := r.Poisson(lambda)
			if k < 0 {
				t.Fatalf("Poisson(%g) returned %d", lambda, k)
			}
			sum += float64(k)
		}
		mean := sum / n
		tol := 4 * (lambda + 1) / 100 // a few standard errors
		if mean < lambda-tol || mean > lambda+tol {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
	}
}

func TestPoissonEdges(t *testing.T) {
	r := NewRNG(1)
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) should panic")
		}
	}()
	r.Poisson(-1)
}
