package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer
// than two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Accumulator maintains online mean and variance (Welford's algorithm)
// together with min and max. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples seen.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample seen, or 0 before any samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample seen, or 0 before any samples.
func (a *Accumulator) Max() float64 { return a.max }

// MeanCI95 returns a 95% confidence half-interval for the mean assuming
// approximate normality of the sample mean.
func (a *Accumulator) MeanCI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
