package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic example is 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 || Sum(xs) != 8 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty should be 0")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestMedianUnsortedInput(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Error("empty Summarize should be zero value")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 1000)
	acc := Accumulator{}
	for i := range xs {
		xs[i] = r.NormAt(3, 2)
		acc.Add(xs[i])
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.Variance(), Variance(xs), 1e-6) {
		t.Errorf("online var %v vs batch %v", acc.Variance(), Variance(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Error("online min/max mismatch")
	}
	if acc.N() != 1000 {
		t.Errorf("N = %d", acc.N())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	acc := Accumulator{}
	if acc.Variance() != 0 || acc.MeanCI95() != 0 {
		t.Error("empty accumulator should have zero variance and CI")
	}
	acc.Add(7)
	if acc.Mean() != 7 || acc.Min() != 7 || acc.Max() != 7 || acc.Variance() != 0 {
		t.Error("single-sample accumulator wrong")
	}
}

func TestMeanCI95Shrinks(t *testing.T) {
	r := NewRNG(101)
	small, large := Accumulator{}, Accumulator{}
	for i := 0; i < 100; i++ {
		small.Add(r.Norm())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Norm())
	}
	if large.MeanCI95() >= small.MeanCI95() {
		t.Errorf("CI did not shrink: small=%v large=%v", small.MeanCI95(), large.MeanCI95())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.3) != 3 || Lerp(5, 5, 0.9) != 5 {
		t.Error("Lerp wrong")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	r := NewRNG(103)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormAt(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			if v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative and translation-invariant.
func TestVarianceProperties(t *testing.T) {
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := rr.Intn(40) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormAt(0, 5)
			ys[i] = xs[i] + 100
		}
		v1, v2 := Variance(xs), Variance(ys)
		return v1 >= 0 && almostEqual(v1, v2, 1e-6*(1+v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
