package route

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sprintgame/internal/cluster"
	"sprintgame/internal/sim"
	"sprintgame/internal/stats"
	"sprintgame/internal/telemetry"
)

// Config configures a serving run.
type Config struct {
	// Cluster shapes the datacenter: racks, epochs, game parameters,
	// seeds, worker pool, sprint-policy factory, fault plan, and
	// telemetry sinks. Serving mode ignores the batch-only fields
	// AllowPartial, MaxRetries, and RetryBackoff: a killed rack is
	// permanent and its queue is rerouted to survivors, which *is* the
	// recovery mechanism.
	Cluster cluster.Config
	// Arrivals generates the offered load.
	Arrivals Arrivals
	// Router assigns each arriving job to a rack.
	Router Policy
	// TraceSeed, when non-zero, overrides the seed the serving span
	// tree's trace ID derives from (default MixSeed(BaseSeed, -4)).
	// Shootouts that run several policies on the same BaseSeed — the
	// identical-arrival-stream discipline — give each run its own
	// TraceSeed so the span trees stay distinct in one trace file.
	TraceSeed uint64
}

// Validate checks the serving configuration.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Arrivals == nil {
		return errors.New("route: nil arrival process")
	}
	if c.Router == nil {
		return errors.New("route: nil routing policy")
	}
	return nil
}

// LatencySummary reports job latency in epochs (completion epoch −
// arrival epoch + 1: a job arriving and finishing in the same epoch has
// latency 1). Quantiles are estimated from a lock-free
// telemetry.Histogram with 1-epoch buckets, so they are exact up to the
// bucket width; Mean and Max are exact.
type LatencySummary struct {
	P50, P90, P99, P999 float64
	Mean, Max           float64
}

// RackServe is one rack's serving outcome.
type RackServe struct {
	// Rack is the rack's index in Config.Cluster.Racks.
	Rack int
	// Name is the rack's label.
	Name string
	// Alive is false when a fault killed the rack mid-run.
	Alive bool
	// Epochs is the number of epochs the rack completed.
	Epochs int
	// Jobs is the number of jobs the rack completed.
	Jobs int
	// Units is the total task units the rack's simulation produced
	// (serving capacity, whether or not a job consumed it).
	Units float64
	// QueueDepth is the rack's queue length when the run ended.
	QueueDepth int
	// Sim is the rack's simulation result (partial for killed racks).
	Sim *sim.Result
}

// Result is a completed serving run.
type Result struct {
	// Policy is the routing policy's name.
	Policy string
	// Arrivals is the arrival process's name.
	Arrivals string
	// Epochs is the run length.
	Epochs int
	// Workers is the worker-pool size used; results are identical for
	// every value.
	Workers int
	// Racks holds every rack's serving outcome in index order, dead
	// racks included (Alive == false).
	Racks []RackServe
	// Failed lists killed racks in rack-index order.
	Failed []cluster.RackError
	// Arrived, Completed, Unfinished count jobs; Arrived == Completed +
	// Unfinished always holds (the conservation invariant: rerouting
	// may delay a job, never drop it).
	Arrived, Completed, Unfinished int
	// Rerouted counts dispatches that re-queued a job off a killed
	// rack.
	Rerouted int
	// UnitsArrived and UnitsCompleted total the jobs' task-unit
	// demand.
	UnitsArrived, UnitsCompleted float64
	// Throughput is UnitsCompleted per epoch.
	Throughput float64
	// JobsPerEpoch is Completed per epoch.
	JobsPerEpoch float64
	// Latency summarizes completed jobs' latency in epochs.
	Latency LatencySummary
}

// servedJob is the engine's per-job bookkeeping.
type servedJob struct {
	epoch     int     // arrival epoch
	units     float64 // demanded units
	remaining float64 // units still to produce
	completed int     // completion epoch, -1 while queued
	racks     []dispatchRec
}

// dispatchRec is one (re)dispatch of a job.
type dispatchRec struct {
	rack    int
	epoch   int
	reroute bool
}

// rackState is the engine's per-rack live state.
type rackState struct {
	stepper *sim.Stepper
	snap    cluster.RackSnapshot
	queue   []int // job IDs in FIFO order
	pr      float64
	jobs    int // completed job count
	units   float64
	last    sim.EpochStats
	stepErr error
}

// ewmaAlpha smooths each rack's observed production into
// RackSnapshot.RateUnits: high enough to track recovery transitions
// within a few epochs, low enough that one noisy epoch does not flap
// the routing decision.
const ewmaAlpha = 0.25

// Serve runs the event-driven serving loop: per epoch, fault kills
// fire and their queues reroute, new arrivals are dispatched one at a
// time through Config.Router against live snapshots, every alive rack
// steps its sprinting game concurrently (barrier per epoch), and each
// rack's queue drains FIFO against the units the rack actually
// produced. See the package comment for the determinism contract.
//
// Serve errors if every rack dies (nothing can serve) or if any
// internal invariant — job conservation above all — breaks.
func Serve(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cc := cfg.Cluster
	nRacks := len(cc.Racks)
	workers := cc.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nRacks {
		workers = nRacks
	}

	racks := make([]*rackState, nRacks)
	for i := range racks {
		simCfg := cc.RackSimConfig(i)
		pol, err := cc.Policy(i, cc.Racks[i], simCfg)
		if err != nil {
			return nil, fmt.Errorf("route: rack %d policy: %w", i, err)
		}
		st, err := sim.NewStepper(simCfg, pol)
		if err != nil {
			return nil, fmt.Errorf("route: rack %d: %w", i, err)
		}
		nMin, nMax := simCfg.Game.Trip.Bounds()
		agents := simCfg.Game.N
		racks[i] = &rackState{
			stepper: st,
			pr:      simCfg.Game.Pr,
			snap: cluster.RackSnapshot{
				Rack:       i,
				Name:       cc.RackName(i),
				Alive:      true,
				Agents:     agents,
				UPSCharge:  1,
				NMin:       nMin,
				NMax:       nMax,
				TripMargin: 1 - simCfg.Game.Trip.Ptrip(0),
				// Until observed: a healthy rack retires ~1 unit per
				// agent-epoch.
				RateUnits: float64(agents),
			},
		}
	}

	kills := make([]int, nRacks)
	for i := range kills {
		kills[i] = -1
	}
	if cc.Faults.Active() {
		kills = cc.Faults.Schedule(cc.BaseSeed, nRacks, cc.Epochs)
	}
	arrivalRNG := stats.NewRNG(cluster.MixSeed(cc.BaseSeed, -3))
	tracer := cc.Tracer
	tracing := tracer.Enabled()

	// The persistent stepping pool: rack indices in, barrier via wg.
	// Each stepper owns its RNG stream and has nil telemetry sinks, so
	// stepping order across workers cannot affect results.
	stepCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for i := range stepCh {
				rs := racks[i]
				rs.last, rs.stepErr = rs.stepper.Step()
				wg.Done()
			}
		}()
	}
	defer close(stepCh)

	var jobs []*servedJob
	var failed []cluster.RackError
	res := &Result{
		Policy:   cfg.Router.Name(),
		Arrivals: cfg.Arrivals.Name(),
		Epochs:   cc.Epochs,
		Workers:  workers,
	}
	// Latency lives in a lock-free histogram with 1-epoch buckets
	// (coarser only for very long runs), so tail quantiles are exact to
	// the bucket width.
	width := 1.0
	for float64(cc.Epochs)/width > 2048 {
		width *= 2
	}
	latBuckets := telemetry.LinearBuckets(width, width, int(float64(cc.Epochs)/width)+1)
	latHist := telemetry.NewRegistry().Histogram("route.latency_epochs", latBuckets)

	snaps := make([]cluster.RackSnapshot, nRacks)
	aliveCount := nRacks

	// dispatch routes one job through the policy and queues it,
	// updating the target's snapshot so later picks in the same epoch
	// see the load.
	dispatch := func(id, epoch int, reroute bool) error {
		for i := range racks {
			snaps[i] = racks[i].snap
		}
		j := jobs[id]
		pick := cfg.Router.Pick(Job{ID: id, Epoch: j.epoch, Units: j.units}, snaps)
		if pick < 0 || pick >= nRacks {
			return fmt.Errorf("route: policy %s picked rack %d of %d", cfg.Router.Name(), pick, nRacks)
		}
		rs := racks[pick]
		if !rs.snap.Alive {
			return fmt.Errorf("route: policy %s routed job %d to dead rack %d", cfg.Router.Name(), id, pick)
		}
		rs.queue = append(rs.queue, id)
		rs.snap.QueueDepth++
		rs.snap.BacklogUnits += j.remaining
		j.racks = append(j.racks, dispatchRec{rack: pick, epoch: epoch, reroute: reroute})
		if reroute {
			res.Rerouted++
		}
		if tracing {
			tracer.Emit("route.dispatch", telemetry.Fields{
				"job":     id,
				"rack":    pick,
				"epoch":   epoch,
				"units":   j.units,
				"reroute": reroute,
			})
		}
		return nil
	}

	for epoch := 0; epoch < cc.Epochs; epoch++ {
		// 1. Faults: kills scheduled for this epoch fire before the
		// rack simulates it, exactly like the batch engine's interrupt.
		// The dead rack's queue reroutes immediately, FIFO order
		// preserved, partial progress (remaining units) kept.
		for i, rs := range racks {
			if kills[i] != epoch || !rs.snap.Alive {
				continue
			}
			rs.snap.Alive = false
			aliveCount--
			partial := rs.stepper.Finalize()
			fault := &cluster.RackFault{Rack: i, Epoch: epoch}
			failed = append(failed, cluster.RackError{
				Rack: i, Name: rs.snap.Name, Epoch: epoch, Attempts: 1,
				Err: fault, Partial: partial,
			})
			orphans := rs.queue
			rs.queue = nil
			rs.snap.QueueDepth = 0
			rs.snap.BacklogUnits = 0
			rs.snap.RateUnits = 0
			if tracing {
				tracer.Emit("route.rack_dead", telemetry.Fields{
					"rack":     i,
					"name":     rs.snap.Name,
					"epoch":    epoch,
					"requeued": len(orphans),
				})
			}
			if aliveCount == 0 {
				return nil, fmt.Errorf("route: all %d racks dead at epoch %d with %d jobs queued", nRacks, epoch, len(orphans))
			}
			for _, id := range orphans {
				if err := dispatch(id, epoch, true); err != nil {
					return nil, err
				}
			}
		}

		// 2. Arrivals, dispatched one at a time against live snapshots
		// — routing inside the loop, never batch-dispatch-then-run.
		arrived := cfg.Arrivals.Epoch(epoch, arrivalRNG)
		for _, a := range arrived {
			if a.Units <= 0 {
				return nil, fmt.Errorf("route: arrival process %s produced a job of %v units at epoch %d", cfg.Arrivals.Name(), a.Units, epoch)
			}
			id := len(jobs)
			jobs = append(jobs, &servedJob{epoch: epoch, units: a.Units, remaining: a.Units, completed: -1})
			res.UnitsArrived += a.Units
			if tracing {
				tracer.Emit("route.arrival", telemetry.Fields{
					"job":   id,
					"epoch": epoch,
					"units": a.Units,
				})
			}
			if err := dispatch(id, epoch, false); err != nil {
				return nil, err
			}
		}

		// 3. Step every alive rack's sprinting game concurrently;
		// barrier before any queue drains.
		stepped := 0
		for i := range racks {
			if racks[i].snap.Alive {
				wg.Add(1)
				stepped++
			}
		}
		for i := range racks {
			if racks[i].snap.Alive {
				stepCh <- i
			}
		}
		if stepped > 0 {
			wg.Wait()
		}

		// 4. Drain queues single-threaded in rack-index order: the
		// units each rack produced this epoch retire its FIFO backlog.
		// Leftover capacity is idle serving headroom, not banked.
		completedThisEpoch := 0
		for i, rs := range racks {
			if !rs.snap.Alive {
				continue
			}
			if rs.stepErr != nil {
				return nil, fmt.Errorf("route: rack %d step: %w", i, rs.stepErr)
			}
			es := rs.last
			rs.units += es.Units
			capacity := es.Units
			for len(rs.queue) > 0 && capacity > 0 {
				j := jobs[rs.queue[0]]
				if j.remaining > capacity {
					j.remaining -= capacity
					rs.snap.BacklogUnits -= capacity
					capacity = 0
					break
				}
				capacity -= j.remaining
				rs.snap.BacklogUnits -= j.remaining
				j.remaining = 0
				j.completed = epoch
				rs.queue = rs.queue[1:]
				rs.snap.QueueDepth--
				rs.jobs++
				completedThisEpoch++
				latHist.Observe(float64(epoch - j.epoch + 1))
				res.UnitsCompleted += j.units
			}
			if rs.snap.BacklogUnits < 1e-9 {
				rs.snap.BacklogUnits = 0
			}

			// 5. Fold the epoch's observables into the rack's snapshot:
			// what the router sees next epoch.
			rs.snap.Epoch = epoch + 1
			rs.snap.Sprinters = es.Sprinters
			rs.snap.Recovering = es.Recovering
			rs.snap.InRecovery = es.RackRecovering
			rs.snap.RecoveryExit = es.RecoveryExit
			rs.snap.TripMargin = 1 - es.Ptrip
			if es.RackRecovering && rs.pr < 1 {
				rs.snap.UPSCharge = es.RecoveryExit / (1 - rs.pr)
			} else {
				rs.snap.UPSCharge = 1
			}
			rs.snap.RateUnits = (1-ewmaAlpha)*rs.snap.RateUnits + ewmaAlpha*es.Units
		}

		if tracing {
			queued, backlog := 0, 0.0
			for _, rs := range racks {
				queued += rs.snap.QueueDepth
				backlog += rs.snap.BacklogUnits
			}
			tracer.Emit("route.epoch", telemetry.Fields{
				"epoch":     epoch,
				"arrived":   len(arrived),
				"completed": completedThisEpoch,
				"queued":    queued,
				"backlog":   backlog,
			})
		}
	}

	// Finalize: full results for survivors, partials already captured
	// for the dead.
	res.Racks = make([]RackServe, nRacks)
	fi := 0
	for i, rs := range racks {
		r := RackServe{
			Rack: i, Name: rs.snap.Name, Alive: rs.snap.Alive,
			Jobs: rs.jobs, Units: rs.units, QueueDepth: len(rs.queue),
		}
		if rs.snap.Alive {
			r.Sim = rs.stepper.Finalize()
			r.Epochs = r.Sim.Epochs
		} else {
			r.Sim = failed[fi].Partial
			r.Epochs = failed[fi].Epoch
			fi++
		}
		res.Racks[i] = r
	}
	res.Failed = failed

	res.Arrived = len(jobs)
	for _, j := range jobs {
		if j.completed >= 0 {
			res.Completed++
		} else {
			res.Unfinished++
		}
	}
	if res.Arrived != res.Completed+res.Unfinished {
		return nil, fmt.Errorf("route: conservation violated: %d arrived != %d completed + %d unfinished",
			res.Arrived, res.Completed, res.Unfinished)
	}
	res.Throughput = res.UnitsCompleted / float64(cc.Epochs)
	res.JobsPerEpoch = float64(res.Completed) / float64(cc.Epochs)
	snap := latHist.Snapshot()
	qs := latHist.Quantiles(0.50, 0.90, 0.99, 0.999)
	res.Latency = LatencySummary{
		P50: qs[0], P90: qs[1], P99: qs[2], P999: qs[3],
		Mean: snap.Mean, Max: snap.Max,
	}

	emitServeMetrics(cc.Metrics, res, jobs, latBuckets)
	if tracing {
		traceSeed := cfg.TraceSeed
		if traceSeed == 0 {
			traceSeed = cluster.MixSeed(cc.BaseSeed, -4)
		}
		emitServeTrace(tracer, traceSeed, res, jobs)
	}
	return res, nil
}

// emitServeMetrics folds the serving outcome into the cluster's
// metrics registry, including the full per-job latency distribution.
func emitServeMetrics(m *telemetry.Registry, res *Result, jobs []*servedJob, latBuckets []float64) {
	if m == nil {
		return
	}
	m.Counter("route.arrivals").Add(int64(res.Arrived))
	m.Counter("route.completed").Add(int64(res.Completed))
	m.Counter("route.unfinished").Add(int64(res.Unfinished))
	m.Counter("route.rerouted").Add(int64(res.Rerouted))
	m.Gauge("route.throughput_units").Set(res.Throughput)
	m.Gauge("route.latency_p99").Set(res.Latency.P99)
	sink := m.Histogram("route.latency_epochs", latBuckets)
	for _, j := range jobs {
		if j.completed >= 0 {
			sink.Observe(float64(j.completed - j.epoch + 1))
		}
	}
}

// emitServeTrace writes the serving span tree: a route.serve root with
// one route.arrival span per job, each with a route.dispatch child per
// (re)dispatch, each with a cluster.rack child naming the rack that
// held the job — the route.arrival → route.dispatch → cluster.rack
// chain cmd/traceview renders. Spans are emitted post-run in job order,
// so the stream is byte-identical for every worker count.
func emitServeTrace(tracer *telemetry.Tracer, traceSeed uint64, res *Result, jobs []*servedJob) {
	root := tracer.StartSpan("route.serve", telemetry.TraceIDFromSeed(traceSeed))
	for id, j := range jobs {
		arrival := root.Child("route.arrival")
		for _, d := range j.racks {
			disp := arrival.Child("route.dispatch")
			rack := disp.Child("cluster.rack")
			rack.EndWith(telemetry.Fields{
				"rack": d.rack,
				"name": res.Racks[d.rack].Name,
			})
			disp.EndWith(telemetry.Fields{
				"rack":    d.rack,
				"epoch":   d.epoch,
				"reroute": d.reroute,
			})
		}
		fields := telemetry.Fields{
			"job":       id,
			"epoch":     j.epoch,
			"units":     j.units,
			"completed": j.completed,
		}
		if j.completed >= 0 {
			fields["latency"] = j.completed - j.epoch + 1
		}
		arrival.EndWith(fields)
	}
	root.EndWith(telemetry.Fields{
		"policy":     res.Policy,
		"arrivals":   res.Arrivals,
		"arrived":    res.Arrived,
		"completed":  res.Completed,
		"unfinished": res.Unfinished,
		"rerouted":   res.Rerouted,
		"throughput": res.Throughput,
	})
	tracer.Emit("route.done", telemetry.Fields{
		"policy":       res.Policy,
		"arrivals":     res.Arrivals,
		"arrived":      res.Arrived,
		"completed":    res.Completed,
		"unfinished":   res.Unfinished,
		"rerouted":     res.Rerouted,
		"throughput":   res.Throughput,
		"latency_p50":  res.Latency.P50,
		"latency_p99":  res.Latency.P99,
		"latency_p999": res.Latency.P999,
	})
}
