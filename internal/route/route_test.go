package route

import (
	"testing"

	"sprintgame/internal/cluster"
)

// snaps builds n alive snapshots with unit rate and empty queues.
func snaps(n int) []cluster.RackSnapshot {
	s := make([]cluster.RackSnapshot, n)
	for i := range s {
		s[i] = cluster.RackSnapshot{
			Rack: i, Alive: true, Agents: 10, RateUnits: 10, TripMargin: 1, UPSCharge: 1,
		}
	}
	return s
}

func TestRoundRobinCyclesAliveOnly(t *testing.T) {
	p := NewRoundRobin()
	s := snaps(4)
	s[1].Alive = false
	want := []int{0, 2, 3, 0, 2, 3}
	for i, w := range want {
		if got := p.Pick(Job{}, s); got != w {
			t.Fatalf("pick %d = rack %d, want %d", i, got, w)
		}
	}
}

func TestRandomPicksAliveOnly(t *testing.T) {
	p := NewRandom(9)
	s := snaps(5)
	s[0].Alive = false
	s[3].Alive = false
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := p.Pick(Job{}, s)
		if got == 0 || got == 3 {
			t.Fatalf("picked dead rack %d", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Errorf("200 picks covered racks %v, want all of {1,2,4}", seen)
	}
}

func TestLeastLoadedPicksSmallestWait(t *testing.T) {
	p := NewLeastLoaded()
	s := snaps(3)
	s[0].BacklogUnits = 50
	s[1].BacklogUnits = 5
	s[2].BacklogUnits = 20
	if got := p.Pick(Job{Units: 1}, s); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	// Rate matters, not raw backlog: rack 2 at 10x the rate wins.
	s[1].RateUnits = 1
	s[2].RateUnits = 100
	if got := p.Pick(Job{Units: 1}, s); got != 2 {
		t.Errorf("pick = %d, want 2", got)
	}
	// Dead racks never picked even when empty.
	s[1].Alive = true
	s[2].Alive = false
	s[0].Alive = false
	if got := p.Pick(Job{Units: 1}, s); got != 1 {
		t.Errorf("pick = %d, want last alive rack 1", got)
	}
}

func TestSprintAwareAvoidsRecoveringRack(t *testing.T) {
	p := NewSprintAware()
	s := snaps(2)
	// Rack 0 has the shorter queue but is mid-recovery with a long
	// expected exit; rack 1 is healthy.
	s[0].BacklogUnits = 0
	s[0].InRecovery = true
	s[0].RecoveryExit = 0.05 // ~20 epochs until it serves again
	s[1].BacklogUnits = 30
	if got := p.Pick(Job{Units: 1}, s); got != 1 {
		t.Errorf("pick = %d, want healthy rack 1", got)
	}
	// Trip risk: same queues, but rack 0 sprints near the breaker.
	s[0].InRecovery = false
	s[0].RecoveryExit = 0
	s[0].TripMargin = 0.2
	s[1].BacklogUnits = 0
	s[1].TripMargin = 1
	if got := p.Pick(Job{Units: 1}, s); got != 1 {
		t.Errorf("pick = %d, want low-risk rack 1", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("fifo", 1); err == nil {
		t.Error("unknown policy should error")
	}
}
