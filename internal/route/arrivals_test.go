package route

import (
	"bytes"
	"reflect"
	"testing"

	"sprintgame/internal/stats"
	"sprintgame/internal/workload"
)

// collect materializes an arrival stream's first n epochs.
func collect(t *testing.T, a Arrivals, seed uint64, n int) [][]Job {
	t.Helper()
	rng := stats.NewRNG(seed)
	out := make([][]Job, n)
	for e := 0; e < n; e++ {
		out[e] = a.Epoch(e, rng)
		for i, j := range out[e] {
			if j.Units <= 0 {
				t.Fatalf("epoch %d job %d has units %v", e, i, j.Units)
			}
		}
	}
	return out
}

func TestPoissonArrivalsDeterministicAndCalibrated(t *testing.T) {
	p := &PoissonArrivals{Rate: 6, MeanUnits: 3}
	a := collect(t, p, 42, 500)
	b := collect(t, &PoissonArrivals{Rate: 6, MeanUnits: 3}, 42, 500)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different streams")
	}
	jobs, units := 0, 0.0
	for _, e := range a {
		jobs += len(e)
		for _, j := range e {
			units += j.Units
		}
	}
	if rate := float64(jobs) / 500; rate < 5 || rate > 7 {
		t.Errorf("arrival rate %.2f, want ~6", rate)
	}
	if mean := units / float64(jobs); mean < 2.4 || mean > 3.6 {
		t.Errorf("mean units %.2f, want ~3", mean)
	}
}

func TestDiurnalArrivalsBurstsAndCycle(t *testing.T) {
	d := &DiurnalArrivals{
		Base: 10, Amp: 8, Period: 100,
		Burst: 4, PBurst: 0.05, BurstDwell: 5, MeanUnits: 2,
	}
	a := collect(t, d, 7, 1000)
	b := collect(t, &DiurnalArrivals{
		Base: 10, Amp: 8, Period: 100,
		Burst: 4, PBurst: 0.05, BurstDwell: 5, MeanUnits: 2,
	}, 7, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different streams")
	}
	// Peak quarter of the cycle should out-arrive the trough quarter.
	peak, trough := 0, 0
	for e, jobs := range a {
		switch (e % 100) / 25 {
		case 0:
			peak += len(jobs)
		case 2:
			trough += len(jobs)
		}
	}
	if peak <= trough {
		t.Errorf("peak quarter %d arrivals <= trough quarter %d; no cycle", peak, trough)
	}
}

// TestTraceArrivalsRoundTrip is the satellite's round-trip contract:
// tracegen output saved to disk and loaded back drives byte-identical
// arrival streams.
func TestTraceArrivalsRoundTrip(t *testing.T) {
	b, err := workload.ByName("decision")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := workload.GenerateTraceSet(b, 3, 4, 50)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ts.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.LoadTraceSet(&buf)
	if err != nil {
		t.Fatal(err)
	}

	orig := collect(t, &TraceArrivals{Set: ts, Scale: 0.02}, 1, 120)
	replay := collect(t, &TraceArrivals{Set: loaded, Scale: 0.02}, 99, 120)
	if !reflect.DeepEqual(orig, replay) {
		t.Error("serialized trace set produced a different arrival stream")
	}
	// Deterministic replay: the RNG seed must not matter at all, and
	// epochs past the trace length wrap.
	if len(orig) < 60 || !reflect.DeepEqual(orig[10], orig[60]) {
		t.Error("trace arrivals did not wrap at the trace length")
	}
}

func TestParseArrivalConfig(t *testing.T) {
	good := []string{
		"poisson",
		"poisson:rate=12,units=3",
		"diurnal:base=8,amp=6,period=200,burst=3,pburst=0.02,dwell=10,units=2",
		"trace:scale=0.05",
		"trace",
		" poisson : rate = 2 ",
	}
	for _, spec := range good {
		cfg, err := ParseArrivalConfig(spec)
		if err != nil {
			t.Errorf("ParseArrivalConfig(%q): %v", spec, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", spec, err)
		}
	}
	bad := []string{
		"",
		"uniform:rate=2",
		"poisson:rate",
		"poisson:burst=2",
		"poisson:rate=abc",
		"poisson:rate=NaN",
		"poisson:rate=1,rate=2",
		"poisson:rate=-1",
		"diurnal:period=0",
		"diurnal:pburst=2",
		"trace:scale=0",
	}
	for _, spec := range bad {
		cfg, err := ParseArrivalConfig(spec)
		if err == nil {
			err = cfg.Validate()
		}
		if err == nil {
			t.Errorf("ParseArrivalConfig(%q) should fail", spec)
		}
	}
}

func TestBuildArrivals(t *testing.T) {
	if _, err := LoadArrivals("poisson:rate=4", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArrivals("trace", nil); err == nil {
		t.Error("trace kind without a trace set should fail")
	}
	b, _ := workload.ByName("decision")
	ts, _ := workload.GenerateTraceSet(b, 1, 2, 20)
	a, err := LoadArrivals("trace:scale=0.1", ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.(*TraceArrivals).Set.Traces) != 2 {
		t.Error("trace arrivals lost the trace set")
	}
}
