package route

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sprintgame/internal/stats"
	"sprintgame/internal/workload"
)

// Arrivals generates the serving run's offered load: the jobs arriving
// at each epoch. Epoch is called once per epoch, in order, from a
// single goroutine, with the engine's dedicated arrival RNG stream
// (cluster.MixSeed(BaseSeed, -3)) — an implementation must take all of
// its randomness from rng so the arrival stream is independent of rack
// scheduling. Returned jobs need only Units set; the engine assigns ID
// and Epoch.
type Arrivals interface {
	// Name identifies the process in results and benchmarks.
	Name() string
	// Epoch returns the jobs arriving at the given epoch.
	Epoch(epoch int, rng *stats.RNG) []Job
}

// PoissonArrivals is the classic open-loop model: the number of jobs
// per epoch is Poisson(Rate) and each job's demand is exponential with
// mean MeanUnits.
type PoissonArrivals struct {
	// Rate is the mean arrivals per epoch (>= 0).
	Rate float64
	// MeanUnits is the mean task-unit demand per job (> 0).
	MeanUnits float64
}

// Name implements Arrivals.
func (p *PoissonArrivals) Name() string { return "poisson" }

// Epoch implements Arrivals.
func (p *PoissonArrivals) Epoch(_ int, rng *stats.RNG) []Job {
	n := rng.Poisson(p.Rate)
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].Units = rng.Exp(1 / p.MeanUnits)
	}
	return jobs
}

// DiurnalArrivals modulates a Poisson process with a sinusoidal daily
// cycle plus bursts: the rate at epoch t is
//
//	Base + Amp * sin(2*pi*t/Period)
//
// multiplied by Burst while a burst is active. Bursts start with
// probability PBurst per epoch and last a geometric number of epochs
// with mean BurstDwell — the flash-crowd shape a load balancer actually
// has to survive.
type DiurnalArrivals struct {
	// Base is the mean arrivals per epoch at the cycle's midpoint.
	Base float64
	// Amp is the cycle's amplitude (0 <= Amp <= Base keeps rates >= 0;
	// larger amplitudes clamp at zero).
	Amp float64
	// Period is the cycle length in epochs (> 0).
	Period float64
	// Burst multiplies the rate during a burst (>= 1).
	Burst float64
	// PBurst is the per-epoch probability a burst starts (in [0, 1]).
	PBurst float64
	// BurstDwell is the mean burst length in epochs (>= 1).
	BurstDwell float64
	// MeanUnits is the mean task-unit demand per job (> 0).
	MeanUnits float64

	burstLeft int
}

// Name implements Arrivals.
func (d *DiurnalArrivals) Name() string { return "diurnal" }

// Epoch implements Arrivals.
func (d *DiurnalArrivals) Epoch(epoch int, rng *stats.RNG) []Job {
	rate := d.Base + d.Amp*math.Sin(2*math.Pi*float64(epoch)/d.Period)
	if rate < 0 {
		rate = 0
	}
	// Burst state machine: draws happen every epoch, burst or not, so
	// the stream's draw count is a pure function of the epoch index.
	startDraw := rng.Bool(d.PBurst)
	if d.burstLeft > 0 {
		d.burstLeft--
		rate *= d.Burst
	} else if startDraw && d.Burst > 1 {
		stay := 1 - 1/d.BurstDwell
		d.burstLeft = rng.Geometric(stay)
		rate *= d.Burst
	}
	n := rng.Poisson(rate)
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].Units = rng.Exp(1 / d.MeanUnits)
	}
	return jobs
}

// TraceArrivals replays recorded workload traces (cmd/tracegen output)
// as offered load: at each epoch, every trace in the set contributes
// one job whose demand is Scale times the trace's base TPS at that
// epoch (wrapping via workload.Trace.At). The stream is a deterministic
// function of the trace set — it draws nothing from the RNG — so two
// runs replaying the same file offer byte-identical load.
type TraceArrivals struct {
	// Set is the recorded trace set (required, validated).
	Set *workload.TraceSet
	// Scale converts base TPS into task units per job (> 0). With
	// tracegen's ~40-60 TPS baseline, Scale ~= Agents/(50*len(Traces))
	// loads one rack near capacity.
	Scale float64
}

// Name implements Arrivals.
func (t *TraceArrivals) Name() string { return "trace:" + t.Set.Benchmark }

// Epoch implements Arrivals.
func (t *TraceArrivals) Epoch(epoch int, _ *stats.RNG) []Job {
	jobs := make([]Job, 0, len(t.Set.Traces))
	for _, tr := range t.Set.Traces {
		_, tps := tr.At(epoch)
		if u := t.Scale * tps; u > 0 {
			jobs = append(jobs, Job{Units: u})
		}
	}
	return jobs
}

// ArrivalConfig is a parsed arrival-process spec, the textual form the
// cmd binaries accept:
//
//	poisson:rate=12,units=3
//	diurnal:base=8,amp=6,period=200,burst=3,pburst=0.02,dwell=10,units=2
//	trace:scale=0.05
//
// Kind selects the process; Params carries its numeric knobs. Unset
// knobs take defaults (see Build); unknown knobs are rejected.
type ArrivalConfig struct {
	Kind   string
	Params map[string]float64
}

// arrivalKnobs lists each kind's accepted parameters.
var arrivalKnobs = map[string][]string{
	"poisson": {"rate", "units"},
	"diurnal": {"base", "amp", "period", "burst", "pburst", "dwell", "units"},
	"trace":   {"scale"},
}

// ParseArrivalConfig parses a "kind:key=val,key=val" spec. The bare
// kind ("poisson") is valid and takes all defaults.
func ParseArrivalConfig(spec string) (*ArrivalConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("route: empty arrival spec")
	}
	kind, rest, _ := strings.Cut(spec, ":")
	kind = strings.TrimSpace(kind)
	knobs, ok := arrivalKnobs[kind]
	if !ok {
		return nil, fmt.Errorf("route: unknown arrival kind %q (have poisson, diurnal, trace)", kind)
	}
	cfg := &ArrivalConfig{Kind: kind, Params: map[string]float64{}}
	if strings.TrimSpace(rest) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("route: arrival knob %q is not key=value", kv)
		}
		known := false
		for _, k := range knobs {
			if k == key {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("route: arrival kind %q has no knob %q (have %v)", kind, key, knobs)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("route: arrival knob %q needs a finite number, got %q", key, val)
		}
		if _, dup := cfg.Params[key]; dup {
			return nil, fmt.Errorf("route: arrival knob %q set twice", key)
		}
		cfg.Params[key] = f
	}
	return cfg, nil
}

// knob returns the parameter or its default.
func (c *ArrivalConfig) knob(key string, def float64) float64 {
	if v, ok := c.Params[key]; ok {
		return v
	}
	return def
}

// Validate checks the parsed knobs' ranges without building.
func (c *ArrivalConfig) Validate() error {
	_, err := c.Build(nil)
	if err != nil && strings.Contains(err.Error(), "needs a trace set") {
		return nil // shape is fine; only the trace file is missing
	}
	return err
}

// Build constructs the arrival process. ts supplies the recordings for
// Kind "trace" (required there, ignored otherwise). Each Build returns
// a fresh process with fresh burst state, so shootouts replay identical
// streams per policy.
func (c *ArrivalConfig) Build(ts *workload.TraceSet) (Arrivals, error) {
	switch c.Kind {
	case "poisson":
		p := &PoissonArrivals{
			Rate:      c.knob("rate", 8),
			MeanUnits: c.knob("units", 4),
		}
		if p.Rate < 0 {
			return nil, fmt.Errorf("route: poisson rate %v < 0", p.Rate)
		}
		if p.MeanUnits <= 0 {
			return nil, fmt.Errorf("route: poisson units %v <= 0", p.MeanUnits)
		}
		return p, nil
	case "diurnal":
		d := &DiurnalArrivals{
			Base:       c.knob("base", 8),
			Amp:        c.knob("amp", 4),
			Period:     c.knob("period", 200),
			Burst:      c.knob("burst", 3),
			PBurst:     c.knob("pburst", 0.01),
			BurstDwell: c.knob("dwell", 10),
			MeanUnits:  c.knob("units", 4),
		}
		switch {
		case d.Base < 0 || d.Amp < 0:
			return nil, fmt.Errorf("route: diurnal base/amp must be >= 0")
		case d.Period <= 0:
			return nil, fmt.Errorf("route: diurnal period %v <= 0", d.Period)
		case d.Burst < 1:
			return nil, fmt.Errorf("route: diurnal burst %v < 1", d.Burst)
		case d.PBurst < 0 || d.PBurst > 1:
			return nil, fmt.Errorf("route: diurnal pburst %v outside [0, 1]", d.PBurst)
		case d.BurstDwell < 1:
			return nil, fmt.Errorf("route: diurnal dwell %v < 1", d.BurstDwell)
		case d.MeanUnits <= 0:
			return nil, fmt.Errorf("route: diurnal units %v <= 0", d.MeanUnits)
		}
		return d, nil
	case "trace":
		scale := c.knob("scale", 0.05)
		if scale <= 0 {
			return nil, fmt.Errorf("route: trace scale %v <= 0", scale)
		}
		if ts == nil {
			return nil, fmt.Errorf("route: arrival kind \"trace\" needs a trace set (-trace-replay)")
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		return &TraceArrivals{Set: ts, Scale: scale}, nil
	default:
		return nil, fmt.Errorf("route: unknown arrival kind %q", c.Kind)
	}
}

// LoadArrivals parses and builds in one step; see ParseArrivalConfig
// and Build.
func LoadArrivals(spec string, ts *workload.TraceSet) (Arrivals, error) {
	cfg, err := ParseArrivalConfig(spec)
	if err != nil {
		return nil, err
	}
	return cfg.Build(ts)
}
