package route

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"sprintgame/internal/cluster"
	"sprintgame/internal/core"
	"sprintgame/internal/power"
	"sprintgame/internal/sim"
	"sprintgame/internal/telemetry"
	"sprintgame/internal/workload"
)

// testGame scales the paper's rack game to n chips.
func testGame(n int) core.Config {
	game := core.DefaultConfig()
	game.N = n
	game.Trip = power.LinearTripModel{NMin: float64(n) / 4, NMax: 3 * float64(n) / 4}
	return game
}

// testCluster builds a racks-rack cluster of chips-chip racks running
// the decision benchmark under greedy sprinting. With hetero, rack
// pairs split their chips 1:3 (keeping total capacity), the contended
// shape where round-robin structurally overloads the small racks.
func testCluster(t *testing.T, racks, chips, epochs int, hetero bool) cluster.Config {
	t.Helper()
	b, err := workload.ByName("decision")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]cluster.RackSpec, racks)
	for i := range specs {
		n := chips
		if hetero {
			if i%2 == 0 {
				n = chips / 2
			} else {
				n = chips + chips/2
			}
		}
		game := testGame(n)
		specs[i] = cluster.RackSpec{
			Groups: []sim.Group{{Class: "decision", Count: n, Bench: b}},
			Game:   &game,
		}
	}
	return cluster.Config{
		Racks:    specs,
		Epochs:   epochs,
		BaseSeed: 17,
		Game:     testGame(chips),
		Policy:   cluster.GreedyFactory(),
	}
}

// contendedArrivals offers ~load x the cluster's nominal capacity.
func contendedArrivals(totalChips int, load float64) *PoissonArrivals {
	const meanUnits = 4
	return &PoissonArrivals{Rate: load * float64(totalChips) / meanUnits, MeanUnits: meanUnits}
}

func serveOnce(t *testing.T, cc cluster.Config, policyName string, workers int, faults *cluster.FaultPlan) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	cc.Workers = workers
	cc.Faults = faults
	cc.Tracer = telemetry.NewTracer(&buf)
	pol, err := ByName(policyName, cluster.MixSeed(cc.BaseSeed, -3)^0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(Config{
		Cluster:  cc,
		Arrivals: contendedArrivals(4*32, 0.9),
		Router:   pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestServeDeterministicAcrossWorkers is the tentpole contract: for
// every shipped policy, serving results and traces are byte-identical
// for Workers in {1, 4, NumCPU} — with and without an active fault
// plan killing racks mid-run.
func TestServeDeterministicAcrossWorkers(t *testing.T) {
	plans := map[string]*cluster.FaultPlan{
		"healthy": nil,
		"faulty":  {Kills: map[int]int{1: 40, 2: 90}},
	}
	for planName, plan := range plans {
		for _, polName := range PolicyNames() {
			cc := testCluster(t, 4, 32, 150, false)
			baseRes, baseTrace := serveOnce(t, cc, polName, 1, plan)
			baseRes.Workers = 0 // the one field allowed to differ
			for _, w := range []int{4, runtime.NumCPU()} {
				res, trace := serveOnce(t, cc, polName, w, plan)
				res.Workers = 0
				if !reflect.DeepEqual(res, baseRes) {
					t.Errorf("%s/%s: workers=%d result differs from workers=1", planName, polName, w)
				}
				if !bytes.Equal(trace, baseTrace) {
					t.Errorf("%s/%s: workers=%d trace differs from workers=1", planName, polName, w)
				}
			}
			res, _ := serveOnce(t, cc, polName, 1, plan)
			res.Workers = 0
			if !reflect.DeepEqual(res, baseRes) {
				t.Errorf("%s/%s: rerun differs", planName, polName)
			}
		}
	}
}

// TestServeReroutesOffDeadRacks: jobs queued on a killed rack are
// re-dispatched to survivors — delayed, never dropped.
func TestServeReroutesOffDeadRacks(t *testing.T) {
	cc := testCluster(t, 3, 32, 120, false)
	plan := &cluster.FaultPlan{Kills: map[int]int{0: 60}}
	res, trace := serveOnce(t, cc, "round-robin", 2, plan)

	if res.Arrived != res.Completed+res.Unfinished {
		t.Fatalf("conservation violated: %d != %d + %d", res.Arrived, res.Completed, res.Unfinished)
	}
	if res.Arrived == 0 || res.Completed == 0 {
		t.Fatalf("no traffic served: %+v", res)
	}
	if len(res.Failed) != 1 || res.Failed[0].Rack != 0 || res.Failed[0].Epoch != 60 {
		t.Fatalf("failed = %+v, want rack 0 at epoch 60", res.Failed)
	}
	if res.Racks[0].Alive || res.Racks[0].Epochs != 60 {
		t.Errorf("rack 0 should be dead after 60 epochs, got %+v", res.Racks[0])
	}
	if res.Racks[0].Sim == nil || res.Racks[0].Sim.Epochs != 60 {
		t.Error("dead rack should carry its 60-epoch partial sim result")
	}
	if res.Rerouted == 0 {
		t.Error("killing a loaded rack should reroute its queue")
	}
	if res.Racks[1].Sim.Epochs != 120 || res.Racks[2].Sim.Epochs != 120 {
		t.Error("survivors should complete all epochs")
	}
	// A round-robin policy never routes to the corpse after the kill:
	// the trace records every dispatch.
	s := string(trace)
	if !strings.Contains(s, `"route.rack_dead"`) {
		t.Error("trace missing route.rack_dead event")
	}
	for _, ev := range []string{`"route.arrival"`, `"route.dispatch"`, `"route.epoch"`, `"route.done"`, `"route.serve"`} {
		if !strings.Contains(s, ev) {
			t.Errorf("trace missing %s", ev)
		}
	}
}

// TestServeShootoutLoadAwareBeatsRoundRobin is the acceptance guard:
// on a contended, heterogeneous cluster, least-loaded and sprint-aware
// must serve at least round-robin's throughput. This is exactly the
// configuration where batch dispatch made load-aware policies 3.5x
// worse — routing inside the loop is what this test pins.
func TestServeShootoutLoadAwareBeatsRoundRobin(t *testing.T) {
	throughput := map[string]float64{}
	latP99 := map[string]float64{}
	cache := core.NewSolveCache(0, nil)
	for _, polName := range PolicyNames() {
		cc := testCluster(t, 4, 32, 300, true)
		// Equilibrium sprinting gives racks their paper capacity, so
		// the routing signal — not recovery collapse — decides the race.
		cc.Policy = cluster.EquilibriumFactory(cache)
		pol, err := ByName(polName, 0xabcd)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Serve(Config{
			Cluster:  cc,
			Arrivals: contendedArrivals(4*32, 1.0),
			Router:   pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		throughput[polName] = res.Throughput
		latP99[polName] = res.Latency.P99
		if res.Latency.P50 > res.Latency.P99 || res.Latency.P99 > res.Latency.P999 {
			t.Errorf("%s: quantiles not monotone: %+v", polName, res.Latency)
		}
	}
	rr := throughput["round-robin"]
	for _, polName := range []string{"least-loaded", "sprint-aware"} {
		if throughput[polName] < rr {
			t.Errorf("%s throughput %.2f < round-robin %.2f (batch-dispatch degeneracy?)",
				polName, throughput[polName], rr)
		}
		if latP99[polName] > latP99["round-robin"] {
			t.Errorf("%s p99 %.1f epochs > round-robin %.1f on a hetero cluster",
				polName, latP99[polName], latP99["round-robin"])
		}
	}
}

func TestServeAllRacksDeadErrors(t *testing.T) {
	cc := testCluster(t, 2, 32, 50, false)
	cc.Faults = &cluster.FaultPlan{Kills: map[int]int{0: 10, 1: 20}}
	pol, _ := ByName("round-robin", 1)
	_, err := Serve(Config{Cluster: cc, Arrivals: contendedArrivals(64, 0.5), Router: pol})
	if err == nil || !strings.Contains(err.Error(), "all 2 racks dead") {
		t.Errorf("expected all-racks-dead error, got %v", err)
	}
}

func TestServeValidate(t *testing.T) {
	cc := testCluster(t, 2, 32, 50, false)
	pol, _ := ByName("random", 1)
	arr := contendedArrivals(64, 0.5)
	if _, err := Serve(Config{Cluster: cc, Router: pol}); err == nil {
		t.Error("nil arrivals should fail")
	}
	if _, err := Serve(Config{Cluster: cc, Arrivals: arr}); err == nil {
		t.Error("nil router should fail")
	}
	bad := cc
	bad.Epochs = 0
	if _, err := Serve(Config{Cluster: bad, Arrivals: arr, Router: pol}); err == nil {
		t.Error("invalid cluster config should fail")
	}
}

// TestServeMatchesBatchSimulation: a serving run's rack simulations are
// byte-identical to the batch engine's — serving only adds queues on
// top of the same deterministic rack games.
func TestServeMatchesBatchSimulation(t *testing.T) {
	cc := testCluster(t, 3, 32, 100, false)
	pol, _ := ByName("round-robin", 1)
	served, err := Serve(Config{Cluster: cc, Arrivals: contendedArrivals(96, 0.5), Router: pol})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := cluster.Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Racks {
		if !reflect.DeepEqual(served.Racks[i].Sim, batch.Racks[i].Sim) {
			t.Errorf("rack %d: serving sim result differs from batch", i)
		}
	}
}
