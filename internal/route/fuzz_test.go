package route

import (
	"testing"
)

// FuzzParseArrivalConfig hammers the arrival-spec parser: any input
// must either produce a config whose non-trace kinds build cleanly, or
// fail with an error — never panic.
func FuzzParseArrivalConfig(f *testing.F) {
	f.Add("poisson")
	f.Add("poisson:rate=12,units=3")
	f.Add("diurnal:base=8,amp=6,period=200,burst=3,pburst=0.02,dwell=10,units=2")
	f.Add("trace:scale=0.05")
	f.Add("poisson:rate=1e308,units=1e-308")
	f.Add("diurnal:pburst=,")
	f.Add(":::===,,,")
	f.Add("poisson:rate=-0")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseArrivalConfig(spec)
		if err != nil {
			return
		}
		if cfg.Kind == "" {
			t.Fatalf("parsed %q into empty kind", spec)
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		if cfg.Kind == "trace" {
			return // building needs a trace set
		}
		if _, err := cfg.Build(nil); err != nil {
			t.Fatalf("Validate accepted %q but Build failed: %v", spec, err)
		}
	})
}
