// Package route is the cluster's serving layer: an event-driven loop in
// which jobs arrive *during* simulation and a routing policy assigns
// each one to a rack using live per-rack state.
//
// The batch engine (internal/cluster) answers "what does this
// datacenter produce?"; route answers "how does it serve?". Arrival
// processes (Poisson, diurnal/bursty, recorded-trace replay) inject
// jobs each epoch; a Policy picks a rack per job from the racks'
// current cluster.RackSnapshots — queue depth, backlog, sprint
// pressure, breaker trip margin, recovery state, liveness — and
// per-rack FIFO queues drain at whatever task rate each rack's
// sprinting game actually produces that epoch.
//
// Routing decisions happen inside the epoch loop, interleaved with
// simulation, never batched up front. The inference-sim mock study that
// shaped this design found that dispatch-then-run made every load-aware
// policy degenerate — least-loaded ran 3.5x WORSE than round-robin,
// because the load signal was frozen at dispatch time. Policies here
// see the effect of their own dispatches within the same epoch.
//
// # Determinism
//
// Serving runs are byte-identical for every Config.Cluster.Workers
// value, including under an active cluster.FaultPlan:
//
//   - each rack steps its own sim.Stepper on its own RNG stream
//     (cluster.MixSeed discipline), in parallel, with a barrier per
//     epoch;
//   - arrivals draw from a dedicated stream, MixSeed(BaseSeed, -3),
//     that no rack uses;
//   - dispatch and queue drain are single-threaded, in arrival order
//     and rack-index order respectively;
//   - telemetry is emitted from the single-threaded sections only, and
//     span trees derive their IDs from MixSeed(BaseSeed, -4).
package route

import (
	"fmt"

	"sprintgame/internal/cluster"
	"sprintgame/internal/stats"
)

// Job is one unit of arriving work: a demand of Units task units that
// some rack must produce. Units are the simulator's currency (one
// normal-mode agent-epoch == 1 unit), so a rack of A chips retires
// roughly A units per epoch when healthy.
type Job struct {
	// ID is the job's arrival sequence number, assigned by the engine.
	ID int
	// Epoch is the arrival epoch.
	Epoch int
	// Units is the job's task-unit demand (> 0).
	Units float64
}

// Policy picks a rack for each arriving job. Pick is called once per
// job, in arrival order, from a single goroutine; implementations may
// keep state (round-robin cursors, RNG streams) without locking.
//
// racks[i] is rack i's live snapshot, updated for dispatches earlier in
// the same epoch — QueueDepth and BacklogUnits already include them, so
// load-aware policies spread bursts instead of dogpiling the emptiest
// rack. Snapshots for dead racks have Alive == false; Pick must return
// an alive rack's index. The engine rejects picks of dead racks rather
// than silently rerouting: a policy that routes to a corpse is a bug.
type Policy interface {
	// Name identifies the policy in results and benchmarks.
	Name() string
	// Pick returns the index of the rack to queue job on. At least one
	// rack is alive when Pick is called.
	Pick(job Job, racks []cluster.RackSnapshot) int
}

// RoundRobin cycles through alive racks in index order, restarting
// after the rack it last picked. The baseline every load-aware policy
// must beat.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin policy starting at rack 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy: the next alive rack in cyclic index order.
func (p *RoundRobin) Pick(_ Job, racks []cluster.RackSnapshot) int {
	for off := 0; off < len(racks); off++ {
		i := (p.next + off) % len(racks)
		if racks[i].Alive {
			p.next = i + 1
			return i
		}
	}
	return -1 // unreachable: the engine guarantees an alive rack
}

// Random picks uniformly among alive racks from its own deterministic
// stream.
type Random struct {
	rng *stats.RNG
}

// NewRandom returns a random policy drawing from the given seed.
func NewRandom(seed uint64) *Random { return &Random{rng: stats.NewRNG(seed)} }

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Pick implements Policy.
func (p *Random) Pick(_ Job, racks []cluster.RackSnapshot) int {
	alive := 0
	for i := range racks {
		if racks[i].Alive {
			alive++
		}
	}
	k := p.rng.Intn(alive)
	for i := range racks {
		if racks[i].Alive {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// LeastLoaded picks the alive rack with the smallest expected wait:
// backlog (including this job) divided by the rack's recent production
// rate. Ties break toward the lowest index, keeping the policy
// deterministic.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (p *LeastLoaded) Pick(job Job, racks []cluster.RackSnapshot) int {
	best, bestScore := -1, 0.0
	for i := range racks {
		if !racks[i].Alive {
			continue
		}
		score := expectedWait(job, &racks[i])
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// sprintAwareTripWeight converts breaker trip probability into expected
// delay: a trip costs the rack a recovery, whose expected length at the
// paper's pr is a handful of epochs, so trip risk is charged at that
// scale.
const sprintAwareTripWeight = 5.0

// SprintAware extends least-loaded with the sprinting game's power
// state: racks mid-recovery are charged their expected recovery length
// (1/RecoveryExit epochs of zero production), and racks sprinting close
// to the breaker's trip region are charged their trip probability times
// an expected recovery cost. It is the policy that actually reads the
// snapshot fields the sprinting game exposes — headroom, trip margin,
// UPS charge — rather than queue length alone.
type SprintAware struct{}

// NewSprintAware returns a sprint-aware policy.
func NewSprintAware() *SprintAware { return &SprintAware{} }

// Name implements Policy.
func (p *SprintAware) Name() string { return "sprint-aware" }

// Pick implements Policy.
func (p *SprintAware) Pick(job Job, racks []cluster.RackSnapshot) int {
	best, bestScore := -1, 0.0
	for i := range racks {
		s := &racks[i]
		if !s.Alive {
			continue
		}
		score := expectedWait(job, s)
		if s.InRecovery {
			// Expected epochs before the rack produces units again.
			exit := s.RecoveryExit
			if exit < 0.01 {
				exit = 0.01
			}
			score += 1 / exit
		} else {
			// Trip risk: probability the rack's current sprint pressure
			// trips the breaker, scaled to a recovery's expected cost.
			score += (1 - s.TripMargin) * sprintAwareTripWeight
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// expectedWait estimates the epochs until job would complete on the
// rack: queued backlog plus the job itself, over the rack's recent
// production rate.
func expectedWait(job Job, s *cluster.RackSnapshot) float64 {
	rate := s.RateUnits
	if rate < 1e-9 {
		// A rack producing nothing (deep recovery) is effectively
		// infinite wait; keep the score finite but dominant.
		rate = 1e-9
	}
	return (s.BacklogUnits + job.Units) / rate
}

// PolicyNames lists the shipped routing policies in shootout order.
func PolicyNames() []string {
	return []string{"round-robin", "random", "least-loaded", "sprint-aware"}
}

// ByName builds a shipped policy. seed feeds stochastic policies
// (random); deterministic policies ignore it.
func ByName(name string, seed uint64) (Policy, error) {
	switch name {
	case "round-robin", "roundrobin", "rr":
		return NewRoundRobin(), nil
	case "random":
		return NewRandom(seed), nil
	case "least-loaded", "leastloaded", "ll":
		return NewLeastLoaded(), nil
	case "sprint-aware", "sprintaware", "sa":
		return NewSprintAware(), nil
	default:
		return nil, fmt.Errorf("route: unknown policy %q (have %v)", name, PolicyNames())
	}
}
