// Package plot renders series as ASCII charts for the terminal: the
// reproduction's "figures" (sprinter timelines, densities, efficiency
// curves) become directly viewable from cmd/experiments -plot without
// any plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// blocks are eighth-height bar glyphs, lowest to tallest.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line block-character sparkline scaled to
// [min, max]. Empty input yields an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Bin shrinks a series to width points by averaging consecutive windows;
// series shorter than width are returned as-is (copied).
func Bin(xs []float64, width int) []float64 {
	if width <= 0 || len(xs) <= width {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Series is one labelled line of a chart.
type Series struct {
	Label  string
	Values []float64
}

// Chart writes labelled sparklines with a shared scale, a compact
// text rendering of a multi-series figure.
func Chart(w io.Writer, title string, width int, series ...Series) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.Values {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if math.IsInf(lo, 1) {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	labelWidth := 0
	for _, s := range series {
		if len(s.Label) > labelWidth {
			labelWidth = len(s.Label)
		}
	}
	for _, s := range series {
		binned := Bin(s.Values, width)
		// Rescale against the global bounds so series are comparable.
		scaled := make([]float64, len(binned))
		copy(scaled, binned)
		line := sparklineScaled(scaled, lo, hi)
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelWidth, s.Label, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  scale [%.3g, %.3g]\n", labelWidth, "", lo, hi)
	return err
}

func sparklineScaled(xs []float64, lo, hi float64) string {
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// HBar writes a labelled horizontal bar chart: one row per (label,
// value), bars scaled to maxWidth characters.
func HBar(w io.Writer, title string, maxWidth int, labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("plot: %d labels but %d values", len(labels), len(values))
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	peak := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > peak {
			peak = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if peak > 0 && v > 0 {
			n = int(v / peak * float64(maxWidth))
		}
		if _, err := fmt.Fprintf(w, "%-*s %8.3g %s\n",
			labelWidth, labels[i], v, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	return nil
}
