package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should give empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	runes := []rune(s)
	// Monotone input yields monotone glyph heights.
	for i := 1; i < len(runes); i++ {
		if indexOf(runes[i]) < indexOf(runes[i-1]) {
			t.Fatalf("sparkline not monotone: %q", s)
		}
	}
	// Constant input renders without panicking and uses one glyph.
	c := []rune(Sparkline([]float64{5, 5, 5}))
	if c[0] != c[1] || c[1] != c[2] {
		t.Errorf("constant series should use one glyph: %q", string(c))
	}
}

func indexOf(r rune) int {
	for i, b := range blocks {
		if b == r {
			return i
		}
	}
	return -1
}

func TestBin(t *testing.T) {
	xs := []float64{1, 1, 3, 3, 5, 5}
	out := Bin(xs, 3)
	if len(out) != 3 || out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("binned = %v", out)
	}
	// Shorter than width: copied through.
	same := Bin(xs, 10)
	if len(same) != 6 {
		t.Errorf("short series length %d", len(same))
	}
	same[0] = 99
	if xs[0] == 99 {
		t.Error("Bin aliased its input")
	}
	if len(Bin(nil, 5)) != 0 {
		t.Error("nil input should give empty output")
	}
}

func TestChart(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "sprinters", 20,
		Series{Label: "greedy", Values: []float64{0, 500, 0, 500}},
		Series{Label: "E-T", Values: []float64{250, 250, 250, 250}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sprinters", "greedy", "E-T", "scale [0, 500]"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Empty chart renders a placeholder.
	buf.Reset()
	if err := Chart(&buf, "empty", 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestHBar(t *testing.T) {
	var buf bytes.Buffer
	err := HBar(&buf, "rates", 10, []string{"a", "bb"}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("peak bar should be full width:\n%s", out)
	}
	if !strings.Contains(out, "#####\n") {
		t.Errorf("half bar should be half width:\n%s", out)
	}
	if err := HBar(&buf, "bad", 10, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("mismatched inputs should error")
	}
	// Zero values render without bars.
	buf.Reset()
	if err := HBar(&buf, "z", 10, []string{"a"}, []float64{0}); err != nil {
		t.Fatal(err)
	}
}
