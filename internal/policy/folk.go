package policy

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the §6.4 machinery: deviation from an assigned
// strategy, and the coordinator's enforcement responses under the Folk
// theorem — monitoring sprints, detecting deviators, and punishing them.

// Override runs Special for the listed agents and Base for everyone
// else. It models a deviant minority inside a population playing an
// assigned strategy.
type Override struct {
	Base    Policy
	Special Policy
	// SpecialIDs selects the agents routed to Special.
	SpecialIDs map[int]bool
}

// NewOverride builds an Override policy.
func NewOverride(base, special Policy, ids ...int) (*Override, error) {
	if base == nil || special == nil {
		return nil, errors.New("policy: override needs both policies")
	}
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return &Override{Base: base, Special: special, SpecialIDs: m}, nil
}

// Name implements Policy.
func (o *Override) Name() string {
	return fmt.Sprintf("%s+deviant(%s)", o.Base.Name(), o.Special.Name())
}

// Decide implements Policy.
func (o *Override) Decide(ctx Context) bool {
	if o.SpecialIDs[ctx.AgentID] {
		return o.Special.Decide(ctx)
	}
	return o.Base.Decide(ctx)
}

// EpochEnd implements Policy: both constituents observe outcomes.
func (o *Override) EpochEnd(epoch, sprinters int, tripped bool) {
	o.Base.EpochEnd(epoch, sprinters, tripped)
	o.Special.EpochEnd(epoch, sprinters, tripped)
}

// WakeUp implements Policy.
func (o *Override) WakeUp(agentID, epoch int) {
	if o.SpecialIDs[agentID] {
		o.Special.WakeUp(agentID, epoch)
		return
	}
	o.Base.WakeUp(agentID, epoch)
}

// Monitor wraps a policy with the coordinator's deviation detector
// (§6.4): it counts each agent's sprints and permanently bans any agent
// whose cumulative sprint count exceeds a concentration bound around the
// expected rate. "The coordinator could monitor sprints, detect
// deviations from assigned strategies, and forbid agents who deviate
// from ever sprinting again."
type Monitor struct {
	inner Policy
	// expectedShare is the per-epoch sprint share an obedient agent
	// exhibits (ps * pA from the assigned strategy).
	expectedShare float64
	// z is the detection strictness: an agent is banned when her sprint
	// count exceeds mean + z standard deviations of the obedient
	// binomial. Large z avoids punishing honest agents; deviators are
	// still caught because their excess grows linearly with time.
	z float64
	// warmup is the number of epochs before enforcement begins.
	warmup int

	sprints map[int]int
	banned  map[int]bool
}

// NewMonitor wraps inner with deviation detection. expectedShare is the
// obedient per-epoch sprint share; z is the number of binomial standard
// deviations tolerated (4-5 keeps false positives negligible); warmup
// delays enforcement until counts are informative.
func NewMonitor(inner Policy, expectedShare, z float64, warmup int) (*Monitor, error) {
	if inner == nil {
		return nil, errors.New("policy: monitor needs a policy")
	}
	if expectedShare < 0 || expectedShare > 1 {
		return nil, fmt.Errorf("policy: expected share %v is not a probability", expectedShare)
	}
	if z <= 0 {
		return nil, fmt.Errorf("policy: z %v must be positive", z)
	}
	if warmup < 1 {
		return nil, errors.New("policy: warmup must be at least one epoch")
	}
	return &Monitor{
		inner:         inner,
		expectedShare: expectedShare,
		z:             z,
		warmup:        warmup,
		sprints:       make(map[int]int),
		banned:        make(map[int]bool),
	}, nil
}

// Name implements Policy.
func (m *Monitor) Name() string { return m.inner.Name() + "+monitor" }

// Banned reports whether the agent has been banned from sprinting.
func (m *Monitor) Banned(agentID int) bool { return m.banned[agentID] }

// BannedCount returns the number of banned agents.
func (m *Monitor) BannedCount() int { return len(m.banned) }

// banBound returns the maximum sprint count tolerated after `epochs`
// epochs: the binomial mean plus z standard deviations.
func (m *Monitor) banBound(epochs float64) float64 {
	mean := m.expectedShare * epochs
	sd := math.Sqrt(m.expectedShare * (1 - m.expectedShare) * epochs)
	return mean + m.z*sd
}

// Decide implements Policy: banned agents never sprint; others follow
// the inner policy, with their sprints recorded.
func (m *Monitor) Decide(ctx Context) bool {
	if m.banned[ctx.AgentID] {
		return false
	}
	sprint := m.inner.Decide(ctx)
	if sprint {
		m.sprints[ctx.AgentID]++
		if ctx.Epoch >= m.warmup &&
			float64(m.sprints[ctx.AgentID]) > m.banBound(float64(ctx.Epoch+1)) {
			m.banned[ctx.AgentID] = true
			return false // the detected sprint is denied
		}
	}
	return sprint
}

// EpochEnd implements Policy.
func (m *Monitor) EpochEnd(epoch, sprinters int, tripped bool) {
	m.inner.EpochEnd(epoch, sprinters, tripped)
}

// WakeUp implements Policy.
func (m *Monitor) WakeUp(agentID, epoch int) { m.inner.WakeUp(agentID, epoch) }
