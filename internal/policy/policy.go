// Package policy implements the sprinting policies compared in §6 of the
// paper: Greedy (G), Exponential Backoff (E-B), Cooperative Threshold
// (C-T), and Equilibrium Threshold (E-T). Policies decide, for each
// active agent in each epoch, whether to sprint; the rack simulator in
// package sim enforces cooling and recovery.
package policy

import (
	"errors"
	"fmt"

	"sprintgame/internal/stats"
)

// Decision context for one agent-epoch.
type Context struct {
	// AgentID identifies the agent within the rack.
	AgentID int
	// Class is the agent's application class name.
	Class string
	// Epoch is the current epoch index.
	Epoch int
	// Utility is the agent's estimated utility from sprinting in this
	// epoch (normalized TPS gain).
	Utility float64
}

// Policy decides sprints and observes system events. Implementations may
// keep per-agent and global state; the simulator calls them from a single
// goroutine.
type Policy interface {
	// Name returns the policy's short name for reports.
	Name() string
	// Decide reports whether the agent should sprint. It is called only
	// for agents that are able to sprint (active, rack not recovering).
	Decide(ctx Context) bool
	// EpochEnd informs the policy of the epoch's outcome.
	EpochEnd(epoch int, sprinters int, tripped bool)
	// WakeUp informs the policy that an agent has left the recovery
	// state and will be active from the next epoch.
	WakeUp(agentID, epoch int)
}

// Greedy sprints at every opportunity (§6, "permits agents to sprint as
// long as the chip is not cooling and the rack is not recovering").
// Post-recovery wake-ups are staggered across two epochs by the rack
// itself (a dI/dt mechanism enforced by the simulator for every policy,
// §2.2), so the policy needs no state of its own.
type Greedy struct{}

// NewGreedy returns the Greedy policy. The seed parameter is accepted for
// interface symmetry with the stochastic policies and ignored.
func NewGreedy(uint64) *Greedy { return &Greedy{} }

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// Decide implements Policy: always sprint.
func (g *Greedy) Decide(Context) bool { return true }

// EpochEnd implements Policy.
func (g *Greedy) EpochEnd(int, int, bool) {}

// WakeUp implements Policy.
func (g *Greedy) WakeUp(int, int) {}

// ExponentialBackoff throttles sprinting in response to power
// emergencies, exactly as §6 describes: agents sprint greedily until the
// breaker trips; after the t-th trip each agent waits a random number of
// epochs drawn from [0, 2^t - 1] before sprinting again; the waiting
// interval contracts by half if the breaker has not tripped in the past
// 100 epochs.
type ExponentialBackoff struct {
	rng *stats.RNG
	// level is the current backoff exponent t.
	level int
	// quietSince is the epoch from which the trip-free interval is
	// measured for window contraction.
	quietSince int
	// nextAllowed[agent] is the first epoch the agent may sprint again.
	nextAllowed map[int]int
	// maxLevel caps the window at 2^maxLevel epochs.
	maxLevel int
}

// NewExponentialBackoff returns an E-B policy.
func NewExponentialBackoff(seed uint64) *ExponentialBackoff {
	return &ExponentialBackoff{
		rng:         stats.NewRNG(seed),
		nextAllowed: make(map[int]int),
		maxLevel:    10,
	}
}

// Name implements Policy.
func (e *ExponentialBackoff) Name() string { return "exponential-backoff" }

// window returns the current waiting window size 2^t, capped.
func (e *ExponentialBackoff) window() int {
	t := e.level
	if t > e.maxLevel {
		t = e.maxLevel
	}
	return 1 << uint(t)
}

// Decide implements Policy: sprint greedily unless inside the post-trip
// wait.
func (e *ExponentialBackoff) Decide(ctx Context) bool {
	return ctx.Epoch >= e.nextAllowed[ctx.AgentID]
}

// EpochEnd implements Policy: raise the backoff level on a trip, contract
// the window after 100 quiet epochs.
func (e *ExponentialBackoff) EpochEnd(epoch int, _ int, tripped bool) {
	if tripped {
		if e.level < e.maxLevel {
			e.level++
		}
		e.quietSince = epoch
		return
	}
	if e.level > 0 && epoch-e.quietSince >= 100 {
		e.level--
		e.quietSince = epoch
	}
}

// WakeUp implements Policy: an agent returning from the post-trip
// recovery draws her wait from the current window.
func (e *ExponentialBackoff) WakeUp(agentID, epoch int) {
	if w := e.window(); w > 1 {
		e.nextAllowed[agentID] = epoch + 1 + e.rng.Intn(w)
	}
}

// Threshold sprints when an epoch's utility exceeds the agent's assigned
// threshold. With equilibrium thresholds from Algorithm 1 this is the
// paper's E-T policy; with globally optimized thresholds it is C-T.
type Threshold struct {
	// label distinguishes "equilibrium-threshold" from
	// "cooperative-threshold" in reports.
	label string
	// byClass maps an application class to its threshold.
	byClass map[string]float64
}

// NewThreshold builds a threshold policy from per-class thresholds.
func NewThreshold(label string, byClass map[string]float64) (*Threshold, error) {
	if label == "" {
		return nil, fmt.Errorf("policy: threshold policy needs a label")
	}
	if len(byClass) == 0 {
		return nil, fmt.Errorf("policy: threshold policy needs thresholds")
	}
	m := make(map[string]float64, len(byClass))
	for k, v := range byClass {
		m[k] = v
	}
	return &Threshold{label: label, byClass: m}, nil
}

// Name implements Policy.
func (t *Threshold) Name() string { return t.label }

// Decide implements Policy: sprint iff utility exceeds the class
// threshold. Unknown classes never sprint (fail safe).
func (t *Threshold) Decide(ctx Context) bool {
	th, ok := t.byClass[ctx.Class]
	if !ok {
		return false
	}
	return ctx.Utility > th
}

// EpochEnd implements Policy.
func (t *Threshold) EpochEnd(int, int, bool) {}

// WakeUp implements Policy.
func (t *Threshold) WakeUp(int, int) {}

// Never is a baseline that never sprints; it measures normal-mode
// throughput.
type Never struct{}

// Name implements Policy.
func (Never) Name() string { return "never" }

// Decide implements Policy.
func (Never) Decide(Context) bool { return false }

// EpochEnd implements Policy.
func (Never) EpochEnd(int, int, bool) {}

// WakeUp implements Policy.
func (Never) WakeUp(int, int) {}

// Predictive is a threshold policy whose decisions use a per-agent EWMA
// prediction of the epoch's utility instead of the true value — the
// realistic online setting of §4.4, where an agent estimates a sprint's
// benefit from recent history and hardware counters rather than
// observing it in advance. The realized utility is fed back after each
// decision.
type Predictive struct {
	label     string
	byClass   map[string]float64
	alpha     float64
	estimates map[int]float64
}

// NewPredictive builds the policy from per-class thresholds and an EWMA
// smoothing factor alpha in (0, 1].
func NewPredictive(label string, byClass map[string]float64, alpha float64) (*Predictive, error) {
	if label == "" {
		return nil, errors.New("policy: predictive policy needs a label")
	}
	if len(byClass) == 0 {
		return nil, errors.New("policy: predictive policy needs thresholds")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("policy: alpha %v outside (0, 1]", alpha)
	}
	m := make(map[string]float64, len(byClass))
	for k, v := range byClass {
		m[k] = v
	}
	return &Predictive{
		label:     label,
		byClass:   m,
		alpha:     alpha,
		estimates: make(map[int]float64),
	}, nil
}

// Name implements Policy.
func (p *Predictive) Name() string { return p.label }

// Decide implements Policy: compare the prediction (last EWMA estimate)
// against the class threshold, then fold the epoch's realized utility
// into the estimate. The first observed epoch primes the predictor and
// is never a sprint.
func (p *Predictive) Decide(ctx Context) bool {
	th, ok := p.byClass[ctx.Class]
	if !ok {
		return false
	}
	est, primed := p.estimates[ctx.AgentID]
	sprint := primed && est > th
	if !primed {
		p.estimates[ctx.AgentID] = ctx.Utility
	} else {
		p.estimates[ctx.AgentID] = p.alpha*ctx.Utility + (1-p.alpha)*est
	}
	return sprint
}

// EpochEnd implements Policy.
func (p *Predictive) EpochEnd(int, int, bool) {}

// WakeUp implements Policy.
func (p *Predictive) WakeUp(int, int) {}
