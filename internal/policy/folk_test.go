package policy

import (
	"testing"
)

func TestNewOverrideValidation(t *testing.T) {
	if _, err := NewOverride(nil, NewGreedy(1), 0); err == nil {
		t.Error("nil base should error")
	}
	if _, err := NewOverride(NewGreedy(1), nil, 0); err == nil {
		t.Error("nil special should error")
	}
}

func TestOverrideRouting(t *testing.T) {
	base, err := NewThreshold("base", map[string]float64{"c": 100}) // never sprints
	if err != nil {
		t.Fatal(err)
	}
	over, err := NewOverride(base, NewGreedy(1), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if over.Name() != "base+deviant(greedy)" {
		t.Errorf("name = %q", over.Name())
	}
	// Deviants sprint greedily, others follow the (never-sprint) base.
	if !over.Decide(Context{AgentID: 3, Class: "c", Utility: 1}) {
		t.Error("deviant 3 should sprint")
	}
	if !over.Decide(Context{AgentID: 7, Class: "c", Utility: 1}) {
		t.Error("deviant 7 should sprint")
	}
	if over.Decide(Context{AgentID: 4, Class: "c", Utility: 1}) {
		t.Error("agent 4 should follow the base policy")
	}
	// Hooks forward without panicking.
	over.EpochEnd(1, 10, true)
	over.WakeUp(3, 2)
	over.WakeUp(4, 2)
}

func TestNewMonitorValidation(t *testing.T) {
	g := NewGreedy(1)
	if _, err := NewMonitor(nil, 0.2, 4, 10); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := NewMonitor(g, -0.1, 4, 10); err == nil {
		t.Error("bad share should error")
	}
	if _, err := NewMonitor(g, 0.2, 0, 10); err == nil {
		t.Error("non-positive z should error")
	}
	if _, err := NewMonitor(g, 0.2, 4, 0); err == nil {
		t.Error("zero warmup should error")
	}
}

func TestMonitorBansPersistentDeviator(t *testing.T) {
	// Expected share 0.2, but the agent sprints every epoch: the excess
	// grows linearly and must cross the z-bound.
	mon, err := NewMonitor(NewGreedy(1), 0.2, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	banned := -1
	for epoch := 0; epoch < 2000; epoch++ {
		mon.Decide(Context{AgentID: 5, Epoch: epoch})
		if mon.Banned(5) {
			banned = epoch
			break
		}
	}
	if banned < 0 {
		t.Fatal("persistent deviator never banned")
	}
	if mon.BannedCount() != 1 {
		t.Errorf("banned count = %d", mon.BannedCount())
	}
	// Once banned, the agent can never sprint again.
	for epoch := banned + 1; epoch < banned+50; epoch++ {
		if mon.Decide(Context{AgentID: 5, Epoch: epoch}) {
			t.Fatal("banned agent sprinted")
		}
	}
}

func TestMonitorSparesObedientAgents(t *testing.T) {
	// An agent sprinting exactly at the expected share must never be
	// banned: her count sits at the binomial mean, far below the z-bound.
	th, err := NewThreshold("obedient", map[string]float64{"c": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(th, 0.5, 4.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 5000; epoch++ {
		// Alternate utilities around the threshold: sprint every other
		// epoch, matching the expected share of 0.5.
		u := 0.0
		if epoch%2 == 0 {
			u = 1.0
		}
		mon.Decide(Context{AgentID: 1, Class: "c", Epoch: epoch, Utility: u})
	}
	if mon.Banned(1) {
		t.Error("obedient agent was banned")
	}
	if mon.Name() != "obedient+monitor" {
		t.Errorf("name = %q", mon.Name())
	}
}

func TestMonitorForwardsHooks(t *testing.T) {
	e := NewExponentialBackoff(1)
	mon, err := NewMonitor(e, 0.5, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A trip observed through the monitor must reach the inner E-B
	// policy and grow its window.
	mon.EpochEnd(0, 900, true)
	if e.window() != 2 {
		t.Errorf("inner window = %d, trip not forwarded", e.window())
	}
	mon.WakeUp(0, 1)
}
