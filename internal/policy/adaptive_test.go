package policy

import (
	"math"
	"testing"

	"sprintgame/internal/core"
	"sprintgame/internal/dist"
	"sprintgame/internal/workload"
)

func adaptiveFixture(t *testing.T) (core.Config, map[string]*dist.Discrete) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.ValueTol = 1e-8
	b, err := workload.ByName("decision")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.DiscreteDensity(200)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, map[string]*dist.Discrete{"decision": d}
}

func TestNewAdaptiveThresholdValidation(t *testing.T) {
	cfg, ds := adaptiveFixture(t)
	if _, err := NewAdaptiveThreshold(cfg, nil, 1, 10); err == nil {
		t.Error("no densities should error")
	}
	if _, err := NewAdaptiveThreshold(cfg, ds, 1.5, 10); err == nil {
		t.Error("bad ptrip should error")
	}
	if _, err := NewAdaptiveThreshold(cfg, ds, 1, 0); err == nil {
		t.Error("zero resolve interval should error")
	}
	if _, err := NewAdaptiveThreshold(cfg, map[string]*dist.Discrete{"x": nil}, 1, 10); err == nil {
		t.Error("nil density should error")
	}
	bad := cfg
	bad.Delta = 2
	if _, err := NewAdaptiveThreshold(bad, ds, 1, 10); err == nil {
		t.Error("invalid game config should error")
	}
}

func TestAdaptiveInitialThresholdMatchesPtripOne(t *testing.T) {
	cfg, ds := adaptiveFixture(t)
	a, err := NewAdaptiveThreshold(cfg, ds, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive-threshold" {
		t.Errorf("name = %q", a.Name())
	}
	want, err := core.SolveBellmanFast(ds["decision"], 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Thresholds()["decision"]; math.Abs(got-want.Threshold) > 1e-9 {
		t.Errorf("initial threshold %v, want %v", got, want.Threshold)
	}
	// Ptrip=1 collapses the threshold to 0: the policy initially sprints
	// on any utility.
	if !a.Decide(Context{Class: "decision", Utility: 0.1}) {
		t.Error("initial policy should sprint on anything")
	}
	if a.Decide(Context{Class: "unknown", Utility: 100}) {
		t.Error("unknown class must never sprint")
	}
}

func TestAdaptiveConvergesToQuietEquilibrium(t *testing.T) {
	// Feed a long trip-free history: the estimate must fall toward 0 and
	// the threshold rise to the Ptrip=0 solution.
	cfg, ds := adaptiveFixture(t)
	a, err := NewAdaptiveThreshold(cfg, ds, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3000; epoch++ {
		a.EpochEnd(epoch, 100, false)
	}
	if a.PtripEstimate() > 1e-3 {
		t.Errorf("estimate = %v after 3000 quiet epochs", a.PtripEstimate())
	}
	want, _ := core.SolveBellmanFast(ds["decision"], 0, cfg)
	got := a.Thresholds()["decision"]
	if math.Abs(got-want.Threshold) > 0.01 {
		t.Errorf("threshold %v, want %v", got, want.Threshold)
	}
	a.WakeUp(0, 0) // no-op, must not panic
}

func TestAdaptiveTracksTripFrequency(t *testing.T) {
	cfg, ds := adaptiveFixture(t)
	a, _ := NewAdaptiveThreshold(cfg, ds, 0.5, 50)
	// 10% trip frequency.
	for epoch := 0; epoch < 5000; epoch++ {
		a.EpochEnd(epoch, 100, epoch%10 == 0)
	}
	if est := a.PtripEstimate(); math.Abs(est-0.1) > 0.02 {
		t.Errorf("estimate %v, want ~0.1", est)
	}
}

func TestAdaptiveClassNames(t *testing.T) {
	cfg, _ := adaptiveFixture(t)
	b1, _ := workload.ByName("decision")
	b2, _ := workload.ByName("pagerank")
	d1, _ := b1.DiscreteDensity(100)
	d2, _ := b2.DiscreteDensity(100)
	a, err := NewAdaptiveThreshold(cfg, map[string]*dist.Discrete{
		"pagerank": d2, "decision": d1,
	}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	names := a.ClassNames()
	if len(names) != 2 || names[0] != "decision" || names[1] != "pagerank" {
		t.Errorf("class names = %v", names)
	}
}
