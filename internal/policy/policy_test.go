package policy

import (
	"testing"
)

func TestGreedyAlwaysSprints(t *testing.T) {
	g := NewGreedy(1)
	if g.Name() != "greedy" {
		t.Errorf("name = %q", g.Name())
	}
	for epoch := 0; epoch < 10; epoch++ {
		if !g.Decide(Context{AgentID: 3, Epoch: epoch, Utility: 0.1}) {
			t.Fatal("greedy declined a sprint")
		}
	}
	// Hooks are no-ops but must be callable.
	g.EpochEnd(1, 500, true)
	g.WakeUp(3, 5)
}

func TestBackoffGreedyUntilFirstTrip(t *testing.T) {
	e := NewExponentialBackoff(1)
	if e.Name() != "exponential-backoff" {
		t.Errorf("name = %q", e.Name())
	}
	for epoch := 0; epoch < 5; epoch++ {
		if !e.Decide(Context{AgentID: 0, Epoch: epoch}) {
			t.Fatal("E-B should sprint greedily before any trip")
		}
		e.EpochEnd(epoch, 100, false)
	}
}

func TestBackoffWaitsAfterTrip(t *testing.T) {
	e := NewExponentialBackoff(42)
	// Three trips: window is 2^3 = 8.
	for i := 0; i < 3; i++ {
		e.EpochEnd(i, 900, true)
	}
	if e.window() != 8 {
		t.Fatalf("window = %d, want 8", e.window())
	}
	// Agents waking up draw waits in [1, window]; they must be blocked
	// until the wait expires and allowed afterwards.
	blockedAny := false
	for id := 0; id < 50; id++ {
		e.WakeUp(id, 10)
		allowedAt := -1
		for epoch := 11; epoch < 11+10; epoch++ {
			if e.Decide(Context{AgentID: id, Epoch: epoch}) {
				allowedAt = epoch
				break
			}
			blockedAny = true
		}
		if allowedAt < 0 {
			t.Fatalf("agent %d never allowed to sprint again", id)
		}
		if allowedAt > 11+8 {
			t.Fatalf("agent %d waited past the window: %d", id, allowedAt)
		}
	}
	if !blockedAny {
		t.Error("no agent waited at all; backoff has no effect")
	}
}

func TestBackoffWindowGrowsAndContracts(t *testing.T) {
	e := NewExponentialBackoff(5)
	e.EpochEnd(0, 900, true)
	e.EpochEnd(1, 900, true)
	if e.window() != 4 {
		t.Fatalf("window after 2 trips = %d", e.window())
	}
	// 100 quiet epochs contract the window by half.
	for epoch := 2; epoch < 103; epoch++ {
		e.EpochEnd(epoch, 10, false)
	}
	if e.window() != 2 {
		t.Fatalf("window after quiet interval = %d, want 2", e.window())
	}
	// Another quiet century brings it back to 1 (greedy).
	for epoch := 103; epoch < 204; epoch++ {
		e.EpochEnd(epoch, 10, false)
	}
	if e.window() != 1 {
		t.Fatalf("window = %d, want 1", e.window())
	}
	// It never goes below 1.
	for epoch := 204; epoch < 405; epoch++ {
		e.EpochEnd(epoch, 10, false)
	}
	if e.window() != 1 {
		t.Fatalf("window shrank below 1: %d", e.window())
	}
}

func TestBackoffWindowCapped(t *testing.T) {
	e := NewExponentialBackoff(5)
	for i := 0; i < 100; i++ {
		e.EpochEnd(i, 900, true)
	}
	if e.window() != 1<<10 {
		t.Fatalf("window = %d, want capped at 1024", e.window())
	}
}

func TestThresholdPolicy(t *testing.T) {
	p, err := NewThreshold("equilibrium-threshold", map[string]float64{
		"decision": 3.0,
		"pagerank": 5.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "equilibrium-threshold" {
		t.Errorf("name = %q", p.Name())
	}
	cases := []struct {
		class   string
		utility float64
		want    bool
	}{
		{"decision", 3.5, true},
		{"decision", 3.0, false}, // strict inequality, Eq. (8)
		{"decision", 2.0, false},
		{"pagerank", 4.9, false},
		{"pagerank", 12, true},
		{"unknown", 100, false}, // fail safe
	}
	for _, c := range cases {
		got := p.Decide(Context{Class: c.class, Utility: c.utility})
		if got != c.want {
			t.Errorf("%s u=%v: got %v, want %v", c.class, c.utility, got, c.want)
		}
	}
	p.EpochEnd(0, 0, false)
	p.WakeUp(0, 0)
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold("", map[string]float64{"a": 1}); err == nil {
		t.Error("empty label should error")
	}
	if _, err := NewThreshold("x", nil); err == nil {
		t.Error("empty thresholds should error")
	}
}

func TestThresholdCopiesInput(t *testing.T) {
	m := map[string]float64{"a": 1}
	p, _ := NewThreshold("x", m)
	m["a"] = 100
	if !p.Decide(Context{Class: "a", Utility: 2}) {
		t.Error("policy should have captured the original threshold")
	}
}

func TestNeverPolicy(t *testing.T) {
	var n Never
	if n.Name() != "never" {
		t.Errorf("name = %q", n.Name())
	}
	if n.Decide(Context{Utility: 1e9}) {
		t.Error("never sprinted")
	}
	n.EpochEnd(0, 0, true)
	n.WakeUp(0, 0)
}

func TestBackoffDeterministic(t *testing.T) {
	run := func() []bool {
		e := NewExponentialBackoff(7)
		out := []bool{}
		for i := 0; i < 4; i++ {
			e.EpochEnd(i, 900, true)
		}
		for id := 0; id < 20; id++ {
			e.WakeUp(id, 4)
		}
		for epoch := 5; epoch < 25; epoch++ {
			for id := 0; id < 20; id++ {
				out = append(out, e.Decide(Context{AgentID: id, Epoch: epoch}))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("backoff is not deterministic for a fixed seed")
		}
	}
}

func TestNewPredictiveValidation(t *testing.T) {
	ths := map[string]float64{"c": 3}
	if _, err := NewPredictive("", ths, 0.5); err == nil {
		t.Error("empty label should error")
	}
	if _, err := NewPredictive("p", nil, 0.5); err == nil {
		t.Error("no thresholds should error")
	}
	if _, err := NewPredictive("p", ths, 0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := NewPredictive("p", ths, 1.5); err == nil {
		t.Error("alpha > 1 should error")
	}
}

func TestPredictiveUsesHistoryNotOracle(t *testing.T) {
	p, err := NewPredictive("pred", map[string]float64{"c": 3}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "pred" {
		t.Errorf("name = %q", p.Name())
	}
	// First epoch primes the predictor: no sprint even on a huge utility.
	if p.Decide(Context{AgentID: 1, Class: "c", Epoch: 0, Utility: 100}) {
		t.Error("unprimed predictive policy sprinted")
	}
	// With alpha=1 the estimate is last epoch's utility: a low current
	// utility after a high one still sprints (prediction lags reality).
	if !p.Decide(Context{AgentID: 1, Class: "c", Epoch: 1, Utility: 0.1}) {
		t.Error("should sprint on the stale high estimate")
	}
	// Now the estimate is 0.1: a high true utility is missed.
	if p.Decide(Context{AgentID: 1, Class: "c", Epoch: 2, Utility: 100}) {
		t.Error("should not sprint on the stale low estimate")
	}
	// Unknown class never sprints.
	if p.Decide(Context{AgentID: 2, Class: "x", Utility: 100}) {
		t.Error("unknown class sprinted")
	}
	p.EpochEnd(0, 0, false)
	p.WakeUp(1, 0)
}

func TestPredictiveAgentsIndependent(t *testing.T) {
	p, _ := NewPredictive("pred", map[string]float64{"c": 3}, 1.0)
	p.Decide(Context{AgentID: 1, Class: "c", Utility: 10}) // primes agent 1 high
	p.Decide(Context{AgentID: 2, Class: "c", Utility: 1})  // primes agent 2 low
	if !p.Decide(Context{AgentID: 1, Class: "c", Utility: 1}) {
		t.Error("agent 1 estimate should be high")
	}
	if p.Decide(Context{AgentID: 2, Class: "c", Utility: 10}) {
		t.Error("agent 2 estimate should be low")
	}
}
