package policy

import (
	"errors"
	"fmt"
	"sort"

	"sprintgame/internal/core"
	"sprintgame/internal/dist"
)

// AdaptiveThreshold learns equilibrium thresholds online, without a
// coordinator: each application class keeps a stochastic-approximation
// estimate of the rack's tripping probability from the emergencies it
// observes, and periodically re-solves its own dynamic program against
// the estimate. If the estimates converge to the stationary trip
// frequency, the learned thresholds converge to the mean-field
// equilibrium's — Algorithm 1 executed by the population itself. This is
// the decentralized enforcement story of §2.3 taken one step further:
// not even the offline analysis needs the coordinator.
type AdaptiveThreshold struct {
	cfg core.Config
	// resolveEvery is the number of epochs between threshold re-solves.
	resolveEvery int

	classes map[string]*adaptiveClass

	// ptripEst is the Robbins-Monro estimate of the per-epoch trip
	// probability (shared: emergencies are rack-wide and public).
	ptripEst float64
	// observations counts epochs observed, driving the 1/t step size.
	observations int
}

type adaptiveClass struct {
	density   *dist.Discrete
	threshold float64
	// vals is the previous re-solve's solution, warm-starting the next
	// one: the trip estimate moves by O(1/t) per epoch, so successive
	// solves are near-identical and converge in a handful of sweeps.
	// The zero Values cold-starts the first solve.
	vals core.Values
}

// NewAdaptiveThreshold builds the learning policy. densities maps each
// class to its (self-profiled) utility density; initialPtrip seeds the
// estimate — Algorithm 1 initializes at 1, and so does the default here.
func NewAdaptiveThreshold(cfg core.Config, densities map[string]*dist.Discrete, initialPtrip float64, resolveEvery int) (*AdaptiveThreshold, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(densities) == 0 {
		return nil, errors.New("policy: adaptive threshold needs class densities")
	}
	if initialPtrip < 0 || initialPtrip > 1 {
		return nil, fmt.Errorf("policy: initial ptrip %v is not a probability", initialPtrip)
	}
	if resolveEvery < 1 {
		return nil, errors.New("policy: resolveEvery must be at least 1")
	}
	a := &AdaptiveThreshold{
		cfg:          cfg,
		resolveEvery: resolveEvery,
		classes:      make(map[string]*adaptiveClass, len(densities)),
		ptripEst:     initialPtrip,
	}
	for name, d := range densities {
		if d == nil || d.Len() == 0 {
			return nil, fmt.Errorf("policy: class %q has an empty density", name)
		}
		a.classes[name] = &adaptiveClass{density: d}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	return a, nil
}

// resolve recomputes every class's threshold against the current
// estimate, warm-starting each class's solve from its previous solution.
func (a *AdaptiveThreshold) resolve() error {
	for name, c := range a.classes {
		vals, err := core.SolveBellmanFastWarm(c.density, a.ptripEst, a.cfg, c.vals)
		if err != nil {
			return fmt.Errorf("policy: adaptive resolve for %q: %w", name, err)
		}
		c.threshold = vals.Threshold
		c.vals = vals
	}
	return nil
}

// Name implements Policy.
func (a *AdaptiveThreshold) Name() string { return "adaptive-threshold" }

// Decide implements Policy.
func (a *AdaptiveThreshold) Decide(ctx Context) bool {
	c, ok := a.classes[ctx.Class]
	if !ok {
		return false
	}
	return ctx.Utility > c.threshold
}

// EpochEnd implements Policy: update the trip-probability estimate with
// a decreasing (1/t) step and periodically re-solve thresholds.
func (a *AdaptiveThreshold) EpochEnd(epoch, _ int, tripped bool) {
	a.observations++
	step := 1.0 / float64(a.observations)
	obs := 0.0
	if tripped {
		obs = 1
	}
	a.ptripEst += step * (obs - a.ptripEst)
	if (epoch+1)%a.resolveEvery == 0 {
		// Estimation noise cannot make the solve fail: the estimate is a
		// valid probability and the density is fixed. An error here
		// would indicate iteration-budget exhaustion; keep the previous
		// thresholds in that case.
		_ = a.resolve()
	}
}

// WakeUp implements Policy.
func (a *AdaptiveThreshold) WakeUp(int, int) {}

// PtripEstimate returns the current learned trip probability.
func (a *AdaptiveThreshold) PtripEstimate() float64 { return a.ptripEst }

// Thresholds returns the current learned thresholds by class, for
// inspection.
func (a *AdaptiveThreshold) Thresholds() map[string]float64 {
	out := make(map[string]float64, len(a.classes))
	for name, c := range a.classes {
		out[name] = c.threshold
	}
	return out
}

// ClassNames returns the classes in sorted order.
func (a *AdaptiveThreshold) ClassNames() []string {
	names := make([]string, 0, len(a.classes))
	for n := range a.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
