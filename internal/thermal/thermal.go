// Package thermal models a chip multiprocessor's thermal package: a
// lumped-capacitance die coupled to a phase-change-material (PCM) heat
// sink, as used for computational sprinting (§2.1 of the paper).
//
// The model reproduces the paper's engineering numbers from first
// principles: with the default paraffin-wax package, a sprint can be
// sustained for about 150 seconds before the PCM is fully melted, and the
// package needs about 300 seconds to re-solidify afterwards — twice the
// sprint duration, which yields the paper's cooling-state persistence
// probability pc = 0.5 at one epoch per sprint duration.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Package describes a chip thermal package with a PCM heat sink.
type Package struct {
	// AmbientC is the ambient temperature in Celsius.
	AmbientC float64
	// CapacitanceJPerK is the sensible thermal capacitance of die plus
	// sink in joules per kelvin.
	CapacitanceJPerK float64
	// ConductanceWPerK is the thermal conductance from package to ambient
	// in watts per kelvin.
	ConductanceWPerK float64
	// MeltC is the PCM melting point in Celsius. While the PCM is
	// partially molten the package temperature is pinned at MeltC.
	MeltC float64
	// LatentJ is the PCM latent heat capacity in joules.
	LatentJ float64
	// MaxC is the junction temperature limit; exceeding it is a model
	// violation (the sprint must end before the PCM is exhausted).
	MaxC float64
}

// Default returns the paraffin-wax package used throughout the
// reproduction. Together with the Default power model in package power it
// gives a ~150 s sprint budget and ~300 s cooling time.
func Default() Package {
	return Package{
		AmbientC:         25.0,
		CapacitanceJPerK: 150.0,
		ConductanceWPerK: 4.5,
		MeltC:            37.667,
		LatentJ:          3600.0,
		MaxC:             75.0,
	}
}

// Validate reports whether the package parameters are physically sensible.
func (p Package) Validate() error {
	if p.CapacitanceJPerK <= 0 {
		return errors.New("thermal: capacitance must be positive")
	}
	if p.ConductanceWPerK <= 0 {
		return errors.New("thermal: conductance must be positive")
	}
	if p.LatentJ < 0 {
		return errors.New("thermal: latent heat must be non-negative")
	}
	if p.MeltC <= p.AmbientC {
		return fmt.Errorf("thermal: melt point %v must exceed ambient %v", p.MeltC, p.AmbientC)
	}
	if p.MaxC <= p.MeltC {
		return fmt.Errorf("thermal: max temperature %v must exceed melt point %v", p.MaxC, p.MeltC)
	}
	return nil
}

// SteadyStateC returns the equilibrium temperature at constant power,
// ignoring the PCM (valid when the result is below MeltC, or when the PCM
// is fully melted).
func (p Package) SteadyStateC(powerW float64) float64 {
	return p.AmbientC + powerW/p.ConductanceWPerK
}

// State is the instantaneous thermal state of a package.
type State struct {
	// TempC is the package temperature in Celsius.
	TempC float64
	// MeltFrac is the fraction of the PCM's latent capacity consumed,
	// in [0, 1]. 0 = fully solid, 1 = fully melted.
	MeltFrac float64
}

// Ambient returns the cold-start state.
func (p Package) Ambient() State { return State{TempC: p.AmbientC} }

// CanSprint reports whether the state has enough thermal headroom for a
// full sprint epoch: the PCM must be fully solid, matching the paper's
// rule that a chip must cool completely before sprinting again.
func (s State) CanSprint() bool { return s.MeltFrac <= 1e-9 }

// Step advances the state by dt seconds under the given power draw using
// forward Euler on the lumped model:
//
//	C dT/dt = P − G (T − Tamb)        below/above the melt plateau
//	dE/dt   = P − G (Tmelt − Tamb)    on the plateau (E = latent energy)
func (p Package) Step(s State, powerW, dt float64) State {
	net := powerW - p.ConductanceWPerK*(s.TempC-p.AmbientC)
	onPlateau := math.Abs(s.TempC-p.MeltC) < 1e-9 &&
		((net > 0 && s.MeltFrac < 1) || (net < 0 && s.MeltFrac > 0))
	if onPlateau && p.LatentJ > 0 {
		s.MeltFrac += net * dt / p.LatentJ
		if s.MeltFrac > 1 {
			// Excess energy beyond full melt becomes sensible heat.
			over := (s.MeltFrac - 1) * p.LatentJ
			s.MeltFrac = 1
			s.TempC += over / p.CapacitanceJPerK
		} else if s.MeltFrac < 0 {
			under := -s.MeltFrac * p.LatentJ
			s.MeltFrac = 0
			s.TempC -= under / p.CapacitanceJPerK
		}
		return s
	}
	t := s.TempC + net*dt/p.CapacitanceJPerK
	// Clamp crossings of the melt plateau onto it.
	if p.LatentJ > 0 {
		if s.TempC < p.MeltC && t > p.MeltC && s.MeltFrac < 1 {
			t = p.MeltC
		}
		if s.TempC > p.MeltC && t < p.MeltC && s.MeltFrac > 0 {
			t = p.MeltC
		}
	}
	s.TempC = t
	return s
}

// Sample is a point of a simulated thermal trajectory.
type Sample struct {
	TimeS    float64
	TempC    float64
	MeltFrac float64
	PowerW   float64
}

// Simulate integrates the package under the given power schedule for
// duration seconds with time step dt and returns the trajectory including
// the initial state. power is called with the current time.
func (p Package) Simulate(start State, power func(tS float64) float64, durationS, dtS float64) []Sample {
	if dtS <= 0 {
		dtS = 0.1
	}
	n := int(durationS/dtS) + 1
	out := make([]Sample, 0, n)
	s := start
	for i := 0; i < n; i++ {
		t := float64(i) * dtS
		w := power(t)
		out = append(out, Sample{TimeS: t, TempC: s.TempC, MeltFrac: s.MeltFrac, PowerW: w})
		s = p.Step(s, w, dtS)
	}
	return out
}

// SprintBudgetS returns how long the package can sustain sprintPowerW
// starting from the normal-mode steady state before the PCM is fully
// melted (the paper's maximum sprint duration, ~150 s for the default
// package). It returns +Inf if the sprint is thermally sustainable
// (steady state below the melt point) and 0 if the package cannot absorb
// a sprint at all.
func (p Package) SprintBudgetS(normalPowerW, sprintPowerW float64) float64 {
	if p.SteadyStateC(sprintPowerW) <= p.MeltC {
		return math.Inf(1)
	}
	// Sensible phase: exponential rise from the normal steady state to
	// the melt point with time constant tau = C/G.
	t0 := p.SteadyStateC(normalPowerW)
	if t0 > p.MeltC {
		t0 = p.MeltC
	}
	tau := p.CapacitanceJPerK / p.ConductanceWPerK
	tInf := p.SteadyStateC(sprintPowerW)
	// Solve t0 + (tInf - t0)(1 - e^{-t/tau}) = MeltC.
	frac := (p.MeltC - t0) / (tInf - t0)
	sensible := 0.0
	if frac > 0 {
		sensible = -tau * math.Log(1-frac)
	}
	// Latent phase: constant net power into the PCM.
	net := sprintPowerW - p.ConductanceWPerK*(p.MeltC-p.AmbientC)
	if net <= 0 {
		return math.Inf(1)
	}
	return sensible + p.LatentJ/net
}

// CoolTimeS returns how long a fully melted package takes to re-solidify
// under normalPowerW (the paper's cooling duration, ~300 s for the default
// package). It returns +Inf if the PCM cannot re-solidify at that power.
func (p Package) CoolTimeS(normalPowerW float64) float64 {
	release := p.ConductanceWPerK*(p.MeltC-p.AmbientC) - normalPowerW
	if release <= 0 {
		return math.Inf(1)
	}
	return p.LatentJ / release
}

// CoolingStayProbability converts the cooling duration into the paper's
// per-epoch persistence probability pc, defined by 1/(1-pc) = cooling
// epochs: pc = 1 - epoch/cool. Epochs longer than the cooling time give
// pc = 0.
func (p Package) CoolingStayProbability(normalPowerW, epochS float64) float64 {
	cool := p.CoolTimeS(normalPowerW)
	if math.IsInf(cool, 1) {
		return 1
	}
	if epochS <= 0 || cool <= epochS {
		return 0
	}
	return 1 - epochS/cool
}
