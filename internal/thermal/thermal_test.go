package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

// Power levels matching the default chip model: normal mode 45 W, sprint
// 81 W (1.8x), as in Figure 1 of the paper.
const (
	normalW = 45.0
	sprintW = 81.0
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPackages(t *testing.T) {
	cases := []func(*Package){
		func(p *Package) { p.CapacitanceJPerK = 0 },
		func(p *Package) { p.ConductanceWPerK = -1 },
		func(p *Package) { p.LatentJ = -5 },
		func(p *Package) { p.MeltC = p.AmbientC },
		func(p *Package) { p.MaxC = p.MeltC },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSteadyState(t *testing.T) {
	p := Default()
	// Normal mode settles at 35C: the paper's non-sprinting temperatures
	// cluster in the mid 30s (Figure 1).
	if got := p.SteadyStateC(normalW); !almost(got, 35, 1e-9) {
		t.Errorf("normal steady state = %v", got)
	}
	// Sprint steady state is above the melt point, so sprints are
	// thermally unsustainable.
	if got := p.SteadyStateC(sprintW); got <= p.MeltC {
		t.Errorf("sprint steady state %v should exceed melt %v", got, p.MeltC)
	}
}

func TestSprintBudgetAround150s(t *testing.T) {
	p := Default()
	budget := p.SprintBudgetS(normalW, sprintW)
	if budget < 120 || budget > 180 {
		t.Errorf("sprint budget = %vs, want ~150s", budget)
	}
}

func TestCoolTimeAround300s(t *testing.T) {
	p := Default()
	cool := p.CoolTimeS(normalW)
	if cool < 250 || cool > 350 {
		t.Errorf("cool time = %vs, want ~300s", cool)
	}
	// The paper: cooling takes about twice the sprint duration.
	ratio := cool / p.SprintBudgetS(normalW, sprintW)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("cool/sprint ratio = %v, want ~2", ratio)
	}
}

func TestCoolingStayProbabilityPaperValue(t *testing.T) {
	p := Default()
	// With a 150 s epoch, pc should be about 0.5 (Table 2): cooling lasts
	// two epochs in expectation.
	pc := p.CoolingStayProbability(normalW, 150)
	if pc < 0.4 || pc > 0.6 {
		t.Errorf("pc = %v, want ~0.5", pc)
	}
}

func TestCoolingStayProbabilityEdges(t *testing.T) {
	p := Default()
	if got := p.CoolingStayProbability(normalW, 0); got != 0 {
		t.Errorf("zero epoch pc = %v", got)
	}
	if got := p.CoolingStayProbability(normalW, 1e9); got != 0 {
		t.Errorf("huge epoch pc = %v", got)
	}
	// Power too high to ever re-solidify: cooling never completes.
	hot := p.ConductanceWPerK*(p.MeltC-p.AmbientC) + 1
	if got := p.CoolingStayProbability(hot, 150); got != 1 {
		t.Errorf("unresolvable cooling pc = %v", got)
	}
}

func TestSprintBudgetSustainable(t *testing.T) {
	p := Default()
	// A tiny "sprint" below the melt threshold can run forever.
	if b := p.SprintBudgetS(normalW, 50); !math.IsInf(b, 1) {
		t.Errorf("sustainable sprint budget = %v, want +Inf", b)
	}
}

func TestCoolTimeInfinite(t *testing.T) {
	p := Default()
	hot := p.ConductanceWPerK * (p.MeltC - p.AmbientC)
	if c := p.CoolTimeS(hot + 1); !math.IsInf(c, 1) {
		t.Errorf("cool time = %v, want +Inf", c)
	}
}

func TestStepApproachesSteadyState(t *testing.T) {
	p := Default()
	p.LatentJ = 0 // pure RC
	p.MeltC = 1000
	p.MaxC = 2000
	s := p.Ambient()
	for i := 0; i < 100000; i++ {
		s = p.Step(s, normalW, 0.1)
	}
	if !almost(s.TempC, p.SteadyStateC(normalW), 0.01) {
		t.Errorf("temp = %v, want %v", s.TempC, p.SteadyStateC(normalW))
	}
}

func TestStepPlateauPinsTemperature(t *testing.T) {
	p := Default()
	s := State{TempC: p.MeltC, MeltFrac: 0.5}
	next := p.Step(s, sprintW, 0.1)
	if next.TempC != p.MeltC {
		t.Errorf("temperature left the plateau: %v", next.TempC)
	}
	if next.MeltFrac <= s.MeltFrac {
		t.Error("melt fraction should grow under sprint power")
	}
}

func TestStepPlateauRefreezes(t *testing.T) {
	p := Default()
	s := State{TempC: p.MeltC, MeltFrac: 0.5}
	next := p.Step(s, normalW, 0.1)
	if next.MeltFrac >= s.MeltFrac {
		t.Error("melt fraction should shrink under normal power")
	}
}

func TestSimulateSprintThenCool(t *testing.T) {
	p := Default()
	sprintLen := 150.0
	power := func(tS float64) float64 {
		if tS < sprintLen {
			return sprintW
		}
		return normalW
	}
	start := State{TempC: p.SteadyStateC(normalW)}
	traj := p.Simulate(start, power, 600, 0.05)
	if len(traj) == 0 {
		t.Fatal("empty trajectory")
	}
	// Temperature never exceeds the junction limit.
	peak := 0.0
	for _, s := range traj {
		if s.TempC > peak {
			peak = s.TempC
		}
		if s.TempC > p.MaxC {
			t.Fatalf("temperature %v exceeded junction limit at t=%v", s.TempC, s.TimeS)
		}
		if s.MeltFrac < -1e-9 || s.MeltFrac > 1+1e-9 {
			t.Fatalf("melt fraction out of range: %v", s.MeltFrac)
		}
	}
	// The sprint heats the package to the melt plateau.
	if !almost(peak, p.MeltC, 0.5) {
		t.Errorf("peak temp %v, want near melt %v", peak, p.MeltC)
	}
	// By the end of the 450 s cool-down the PCM is solid again.
	last := traj[len(traj)-1]
	if last.MeltFrac > 1e-6 {
		t.Errorf("PCM still %.3f molten after cooldown", last.MeltFrac)
	}
	// CanSprint flips from true to false and back.
	if !(State{TempC: last.TempC, MeltFrac: last.MeltFrac}).CanSprint() {
		t.Error("package should be sprint-ready after full cooldown")
	}
}

func TestSimulatedSprintBudgetMatchesAnalytic(t *testing.T) {
	p := Default()
	start := State{TempC: p.SteadyStateC(normalW)}
	traj := p.Simulate(start, func(float64) float64 { return sprintW }, 400, 0.01)
	// Find the first time the PCM is fully melted.
	simBudget := math.Inf(1)
	for _, s := range traj {
		if s.MeltFrac >= 1-1e-9 {
			simBudget = s.TimeS
			break
		}
	}
	analytic := p.SprintBudgetS(normalW, sprintW)
	if math.IsInf(simBudget, 1) {
		t.Fatal("simulation never exhausted the PCM")
	}
	if !almost(simBudget, analytic, 2) {
		t.Errorf("simulated budget %v vs analytic %v", simBudget, analytic)
	}
}

func TestSimulatedCoolTimeMatchesAnalytic(t *testing.T) {
	p := Default()
	start := State{TempC: p.MeltC, MeltFrac: 1}
	traj := p.Simulate(start, func(float64) float64 { return normalW }, 600, 0.01)
	simCool := math.Inf(1)
	for _, s := range traj {
		if s.MeltFrac <= 1e-9 {
			simCool = s.TimeS
			break
		}
	}
	analytic := p.CoolTimeS(normalW)
	if math.IsInf(simCool, 1) {
		t.Fatal("simulation never re-solidified")
	}
	if !almost(simCool, analytic, 2) {
		t.Errorf("simulated cool %v vs analytic %v", simCool, analytic)
	}
}

func TestSimulateDefaultTimestep(t *testing.T) {
	p := Default()
	traj := p.Simulate(p.Ambient(), func(float64) float64 { return 0 }, 1, 0)
	if len(traj) == 0 {
		t.Fatal("dt <= 0 should be coerced, not produce empty output")
	}
}

// Property: energy conservation. Over any simulated interval, stored
// energy change (sensible + latent) equals integrated net power within
// integration error.
func TestEnergyConservationProperty(t *testing.T) {
	p := Default()
	f := func(seed uint16) bool {
		powerW := 20 + float64(seed%100)
		dt := 0.02
		s0 := State{TempC: p.SteadyStateC(normalW)}
		s := s0
		netIn := 0.0
		for i := 0; i < 5000; i++ {
			netIn += (powerW - p.ConductanceWPerK*(s.TempC-p.AmbientC)) * dt
			s = p.Step(s, powerW, dt)
		}
		stored := p.CapacitanceJPerK*(s.TempC-s0.TempC) + p.LatentJ*(s.MeltFrac-s0.MeltFrac)
		return almost(stored, netIn, 1+0.01*math.Abs(netIn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bigger PCM never shortens the sprint budget.
func TestSprintBudgetMonotoneInLatent(t *testing.T) {
	p := Default()
	prev := 0.0
	for _, latent := range []float64{0, 1000, 3600, 10000} {
		q := p
		q.LatentJ = latent
		b := q.SprintBudgetS(normalW, sprintW)
		if b < prev {
			t.Fatalf("budget decreased with more PCM: %v -> %v", prev, b)
		}
		prev = b
	}
}
