# Convenience targets; `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check bench bench-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt + vet + build + race-detector test run (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x

# Cluster, solver, and serving-path benchmarks, recorded as
# BENCH_cluster.json / BENCH_core.json / BENCH_coord.json.
bench-cluster:
	sh scripts/bench.sh
