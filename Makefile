# Convenience targets; `make check` is the pre-commit gate.

GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet + build + race-detector test run (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x
